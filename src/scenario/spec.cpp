#include "scenario/spec.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace lazyctrl::scenario {

namespace {

// ---- lexical helpers ----

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size() || text[0] == '-') {
    return false;
  }
  *out = v;
  return true;
}

bool parse_f64(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || !std::isfinite(v)) return false;
  *out = v;
  return true;
}

bool parse_bool(const std::string& text, bool* out) {
  if (text == "true" || text == "on" || text == "yes" || text == "1") {
    *out = true;
    return true;
  }
  if (text == "false" || text == "off" || text == "no" || text == "0") {
    *out = false;
    return true;
  }
  return false;
}

/// Shortest decimal rendering that parses back to the same double.
std::string fmt_double(double v) {
  char buf[64];
  for (const int precision : {6, 9, 12, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

// ---- enum spellings ----

struct EventName {
  EventKind kind;
  const char* name;
};
constexpr EventName kEventNames[] = {
    {EventKind::kFailSwitch, "fail_switch"},
    {EventKind::kRecoverSwitch, "recover_switch"},
    {EventKind::kFailPeerLink, "fail_peer_link"},
    {EventKind::kRecoverPeerLink, "recover_peer_link"},
    {EventKind::kFailControlLink, "fail_control_link"},
    {EventKind::kRecoverControlLink, "recover_control_link"},
    {EventKind::kControllerOutage, "controller_outage"},
    {EventKind::kMigrationBurst, "migration_burst"},
    {EventKind::kTenantArrival, "tenant_arrival"},
    {EventKind::kTenantDeparture, "tenant_departure"},
    {EventKind::kTrafficSurge, "traffic_surge"},
    {EventKind::kForceRegroup, "force_regroup"},
    {EventKind::kSetControlLoss, "set_control_loss"},
    {EventKind::kSetControlDup, "set_control_dup"},
    {EventKind::kSetCtrlQueueCap, "set_ctrl_queue_cap"},
    {EventKind::kReconcile, "reconcile"},
    {EventKind::kCheckpoint, "checkpoint_at"},
};

bool event_kind_from(const std::string& name, EventKind* out) {
  for (const EventName& e : kEventNames) {
    if (name == e.name) {
      *out = e.kind;
      return true;
    }
  }
  return false;
}

// ---- parser state ----

enum class Section {
  kNone,
  kScenario,
  kTopology,
  kWorkload,
  kConfig,
  kEvents,
  kUnknown,  ///< reported once at the header; member lines are skipped
};

struct Parser {
  ScenarioSpec spec;
  std::vector<Diagnostic> errors;
  /// Source line of each parsed event (parallel to spec.events), so the
  /// cross-event checks after the line loop can still point at the
  /// offending line.
  std::vector<int> event_lines;

  void error(int line, std::string message) {
    errors.push_back({line, std::move(message)});
  }
};

// Each section's key dispatch doubles as the apply_override() grammar, so
// a key accepted in a file is always accepted on the command line too.

bool set_scenario_key(ScenarioSpec& spec, const std::string& key,
                      const std::string& value, std::string* err) {
  if (key == "name") {
    spec.name = value;
    return true;
  }
  if (key == "description") {
    spec.description = value;
    return true;
  }
  if (key == "seed") {
    if (!parse_u64(value, &spec.seed)) {
      *err = "seed expects a non-negative integer, got '" + value + "'";
      return false;
    }
    return true;
  }
  *err = "unknown [scenario] key '" + key + "'";
  return false;
}

bool set_topology_key(ScenarioSpec& spec, const std::string& key,
                      const std::string& value, std::string* err) {
  std::uint64_t v = 0;
  std::size_t* target = nullptr;
  if (key == "switches") target = &spec.topology.switches;
  else if (key == "tenants") target = &spec.topology.tenants;
  else if (key == "min_vms_per_tenant")
    target = &spec.topology.min_vms_per_tenant;
  else if (key == "max_vms_per_tenant")
    target = &spec.topology.max_vms_per_tenant;
  else if (key == "vms_per_switch") target = &spec.topology.vms_per_switch;
  if (target == nullptr) {
    *err = "unknown [topology] key '" + key + "'";
    return false;
  }
  if (!parse_u64(value, &v) || v == 0) {
    *err = key + " expects a positive integer, got '" + value + "'";
    return false;
  }
  *target = static_cast<std::size_t>(v);
  return true;
}

bool set_workload_key(ScenarioSpec& spec, const std::string& key,
                      const std::string& value, std::string* err) {
  WorkloadSpec& w = spec.workload;
  if (key == "kind") {
    if (value == "real_like") w.kind = WorkloadKind::kRealLike;
    else if (value == "synthetic") w.kind = WorkloadKind::kSynthetic;
    else if (value == "drifting_locality")
      w.kind = WorkloadKind::kDriftingLocality;
    else {
      *err = "kind expects real_like | synthetic | drifting_locality, got '" +
             value + "'";
      return false;
    }
    return true;
  }
  if (key == "profile") {
    if (value == "flat") w.flat_profile = true;
    else if (value == "business_day") w.flat_profile = false;
    else {
      *err = "profile expects business_day | flat, got '" + value + "'";
      return false;
    }
    return true;
  }
  if (key == "horizon") {
    if (!parse_duration(value, &w.horizon) || w.horizon <= 0) {
      *err = "horizon expects a positive duration, got '" + value + "'";
      return false;
    }
    return true;
  }
  if (key == "flows" || key == "communities" || key == "phases") {
    std::uint64_t v = 0;
    if (!parse_u64(value, &v)) {
      *err = key + " expects a non-negative integer, got '" + value + "'";
      return false;
    }
    if (key == "flows") w.flows = static_cast<std::size_t>(v);
    else if (key == "communities") {
      if (v == 0) {
        *err = "communities must be positive";
        return false;
      }
      w.communities = static_cast<std::size_t>(v);
    } else {
      if (v == 0) {
        *err = "phases must be positive";
        return false;
      }
      w.phases = static_cast<std::size_t>(v);
    }
    return true;
  }
  double* dtarget = nullptr;
  if (key == "p") dtarget = &w.p;
  else if (key == "q") dtarget = &w.q;
  else if (key == "intra_share") dtarget = &w.intra_share;
  else if (key == "drift_fraction") dtarget = &w.drift_fraction;
  if (dtarget != nullptr) {
    if (!parse_f64(value, dtarget)) {
      *err = key + " expects a number, got '" + value + "'";
      return false;
    }
    return true;
  }
  *err = "unknown [workload] key '" + key + "'";
  return false;
}

bool set_config_key(ScenarioSpec& spec, const std::string& key,
                    const std::string& value, std::string* err) {
  core::Config& c = spec.config;

  const auto dur = [&](SimDuration* target) {
    if (!parse_duration(value, target)) {
      *err = key + " expects a duration (e.g. 30s, 5m, 200ms), got '" +
             value + "'";
      return false;
    }
    return true;
  };
  const auto u64 = [&](auto* target) {
    std::uint64_t v = 0;
    if (!parse_u64(value, &v)) {
      *err = key + " expects a non-negative integer, got '" + value + "'";
      return false;
    }
    *target = static_cast<std::remove_reference_t<decltype(*target)>>(v);
    return true;
  };
  const auto f64 = [&](double* target) {
    if (!parse_f64(value, target)) {
      *err = key + " expects a number, got '" + value + "'";
      return false;
    }
    return true;
  };
  const auto boolean = [&](bool* target) {
    if (!parse_bool(value, target)) {
      *err = key + " expects true|false, got '" + value + "'";
      return false;
    }
    return true;
  };

  // top level
  if (key == "mode") {
    if (value == "lazyctrl") c.mode = core::ControlMode::kLazyCtrl;
    else if (value == "openflow") c.mode = core::ControlMode::kOpenFlow;
    else {
      *err = "mode expects lazyctrl | openflow, got '" + value + "'";
      return false;
    }
    return true;
  }
  if (key == "bootstrap") {
    if (value == "history") spec.bootstrap_history = true;
    else if (value == "index") spec.bootstrap_history = false;
    else {
      *err = "bootstrap expects history | index, got '" + value + "'";
      return false;
    }
    return true;
  }
  if (key == "failover") return boolean(&c.failover_enabled);
  if (key == "keepalive_period") return dur(&c.keepalive_period);
  if (key == "keepalive_loss_threshold") {
    return u64(&c.keepalive_loss_threshold);
  }
  if (key == "switch_reboot_delay") return dur(&c.switch_reboot_delay);
  if (key == "state_report_period") return dur(&c.state_report_period);
  if (key == "controller.servers") {
    if (!u64(&c.controller.servers)) return false;
    if (c.controller.servers == 0) {
      *err = "controller.servers must be positive";
      return false;
    }
    return true;
  }
  // unreliable control plane
  if (key == "ctrl.loss_rate" || key == "ctrl.dup_rate") {
    double* target = key == "ctrl.loss_rate" ? &c.controller.loss_rate
                                             : &c.controller.dup_rate;
    if (!f64(target)) return false;
    if (*target < 0.0 || *target > 1.0) {
      *err = key + " must be in [0, 1]";
      return false;
    }
    return true;
  }
  if (key == "ctrl.queue_cap") return u64(&c.controller.queue_cap);
  if (key == "ctrl.punt_retry_limit") {
    return u64(&c.controller.punt_retry_limit);
  }
  if (key == "ctrl.punt_retry_base") {
    if (!dur(&c.controller.punt_retry_base)) return false;
    if (c.controller.punt_retry_base <= 0) {
      *err = "ctrl.punt_retry_base must be positive";
      return false;
    }
    return true;
  }
  if (key == "ctrl.reconcile_period") {
    return dur(&c.controller.reconcile_period);
  }
  // latency model
  if (key == "latency.host_link") return dur(&c.latency.host_link);
  if (key == "latency.datapath") return dur(&c.latency.datapath);
  if (key == "latency.switch_processing") {
    return dur(&c.latency.switch_processing);
  }
  if (key == "latency.control_link") return dur(&c.latency.control_link);
  if (key == "latency.controller_service") {
    return dur(&c.latency.controller_service);
  }
  // grouping
  if (key == "group_size_limit") {
    if (!u64(&c.grouping.group_size_limit)) return false;
    if (c.grouping.group_size_limit == 0) {
      *err = "group_size_limit must be positive";
      return false;
    }
    return true;
  }
  if (key == "dynamic_regrouping") {
    return boolean(&c.grouping.dynamic_regrouping);
  }
  if (key == "workload_growth_trigger") {
    return f64(&c.grouping.workload_growth_trigger);
  }
  if (key == "min_update_interval") return dur(&c.grouping.min_update_interval);
  if (key == "stats_window") {
    if (!dur(&c.grouping.stats_window)) return false;
    if (c.grouping.stats_window <= 0) {
      *err = "stats_window must be positive";
      return false;
    }
    return true;
  }
  if (key == "intensity_ewma_decay") {
    return f64(&c.grouping.intensity_ewma_decay);
  }
  if (key == "min_update_flow_evidence") {
    return f64(&c.grouping.min_update_flow_evidence);
  }
  if (key == "max_incupdate_iterations") {
    return u64(&c.grouping.max_incupdate_iterations);
  }
  if (key == "parallel_incupdate") {
    return boolean(&c.grouping.parallel_incupdate);
  }
  if (key == "preload_on_update") return boolean(&c.grouping.preload_on_update);
  if (key == "transition_window") return dur(&c.grouping.transition_window);
  if (key == "host_exclusion_tenant_threshold") {
    return u64(&c.grouping.host_exclusion_tenant_threshold);
  }
  // dgm
  if (key == "dgm.mode") {
    if (value == "off") c.dgm.mode = core::DgmMode::kOff;
    else if (value == "periodic") c.dgm.mode = core::DgmMode::kPeriodic;
    else if (value == "drift_triggered") {
      c.dgm.mode = core::DgmMode::kDriftTriggered;
    } else {
      *err = "dgm.mode expects off | periodic | drift_triggered, got '" +
             value + "'";
      return false;
    }
    return true;
  }
  if (key == "dgm.maintenance_period") return dur(&c.dgm.maintenance_period);
  if (key == "dgm.inter_fraction_limit") {
    return f64(&c.dgm.inter_fraction_limit);
  }
  if (key == "dgm.degradation_factor") return f64(&c.dgm.degradation_factor);
  if (key == "dgm.degradation_floor") return f64(&c.dgm.degradation_floor);
  if (key == "dgm.size_skew_limit") return f64(&c.dgm.size_skew_limit);
  if (key == "dgm.min_flow_evidence") return f64(&c.dgm.min_flow_evidence);
  if (key == "dgm.cooldown") return dur(&c.dgm.cooldown);
  if (key == "dgm.max_moves_per_round") return u64(&c.dgm.max_moves_per_round);
  if (key == "dgm.max_merges_per_round") {
    return u64(&c.dgm.max_merges_per_round);
  }
  if (key == "dgm.max_splits_per_round") {
    return u64(&c.dgm.max_splits_per_round);
  }
  if (key == "dgm.min_gain_fraction") return f64(&c.dgm.min_gain_fraction);
  // fib
  if (key == "fib.layout") {
    if (value == "sliced") c.fib.layout = core::GFibLayout::kSliced;
    else if (value == "linear") c.fib.layout = core::GFibLayout::kLinear;
    else {
      *err = "fib.layout expects sliced | linear, got '" + value + "'";
      return false;
    }
    return true;
  }
  if (key == "fib.bloom_bits") {
    if (!u64(&c.fib.bloom_bits)) return false;
    if (c.fib.bloom_bits == 0) {
      *err = "fib.bloom_bits must be positive";
      return false;
    }
    return true;
  }
  if (key == "fib.bloom_hashes") {
    if (!u64(&c.fib.bloom_hashes)) return false;
    if (c.fib.bloom_hashes == 0) {
      *err = "fib.bloom_hashes must be positive";
      return false;
    }
    return true;
  }
  if (key == "fib.report_false_positives") {
    return boolean(&c.fib.report_false_positives);
  }
  // rules
  if (key == "rules.rule_ttl") return dur(&c.rules.rule_ttl);
  if (key == "rules.flow_table_capacity") {
    return u64(&c.rules.flow_table_capacity);
  }
  // batching
  if (key == "batching.flow_batch_size") {
    return u64(&c.batching.flow_batch_size);
  }
  // runtime
  if (key == "runtime.num_shards") {
    if (!u64(&c.runtime.num_shards)) return false;
    if (c.runtime.num_shards == 0) {
      *err = "runtime.num_shards must be positive";
      return false;
    }
    return true;
  }
  if (key == "runtime.mode") {
    if (value == "deterministic") {
      c.runtime.mode = core::RuntimeMode::kDeterministic;
    } else if (value == "fast") {
      c.runtime.mode = core::RuntimeMode::kFast;
    } else {
      *err = "runtime.mode expects deterministic | fast, got '" + value + "'";
      return false;
    }
    return true;
  }
  if (key == "runtime.sync_window") return dur(&c.runtime.sync_window);

  *err = "unknown [config] key '" + key + "'";
  return false;
}

// ---- event parsing ----

/// Which parameters each primitive accepts / requires.
struct EventParamRule {
  bool sw = false;
  bool tenant = false;
  bool hosts = false;
  bool spread = false;    ///< optional when accepted
  bool duration = false;
  bool factor = false;    ///< optional when accepted
  bool rate = false;
  bool cap = false;
};

EventParamRule param_rule(EventKind kind) {
  switch (kind) {
    case EventKind::kFailSwitch:
    case EventKind::kRecoverSwitch:
    case EventKind::kFailPeerLink:
    case EventKind::kRecoverPeerLink:
    case EventKind::kFailControlLink:
    case EventKind::kRecoverControlLink:
      return {.sw = true};
    case EventKind::kControllerOutage:
      return {.duration = true};
    case EventKind::kMigrationBurst:
      return {.hosts = true, .spread = true};
    case EventKind::kTenantArrival:
    case EventKind::kTenantDeparture:
      return {.tenant = true};
    case EventKind::kTrafficSurge:
      return {.duration = true, .factor = true};
    case EventKind::kForceRegroup:
      return {};
    case EventKind::kSetControlLoss:
    case EventKind::kSetControlDup:
      return {.rate = true};
    case EventKind::kSetCtrlQueueCap:
      return {.cap = true};
    case EventKind::kReconcile:
      return {};
    case EventKind::kCheckpoint:
      return {};
  }
  return {};
}

void parse_event_line(Parser& p, int line, const std::string& text) {
  std::istringstream in(text);
  std::vector<std::string> tokens;
  for (std::string tok; in >> tok;) tokens.push_back(tok);
  if (tokens.empty()) return;

  if (tokens[0].rfind("at=", 0) != 0) {
    p.error(line, "event line must start with at=<time>, got '" + tokens[0] +
                      "'");
    return;
  }
  ScenarioEvent ev;
  if (!parse_duration(tokens[0].substr(3), &ev.at)) {
    p.error(line, "bad event time '" + tokens[0].substr(3) +
                      "' (expected e.g. 90s, 10m, 1h)");
    return;
  }
  if (tokens.size() < 2) {
    p.error(line, "event line has a time but no event name");
    return;
  }
  if (!event_kind_from(tokens[1], &ev.kind)) {
    p.error(line, "unknown event '" + tokens[1] + "'");
    return;
  }
  const EventParamRule rule = param_rule(ev.kind);

  bool have_sw = false;
  bool have_tenant = false;
  bool have_hosts = false;
  bool have_duration = false;
  bool have_rate = false;
  bool have_cap = false;
  bool ok = true;
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos) {
      p.error(line, "expected key=value, got '" + tok + "'");
      ok = false;
      continue;
    }
    const std::string key = tok.substr(0, eq);
    const std::string value = tok.substr(eq + 1);
    const auto reject = [&](const char* why) {
      p.error(line, "parameter '" + key + "' " + why + " for " +
                        std::string(to_string(ev.kind)));
      ok = false;
    };
    if (key == "sw") {
      if (!rule.sw) {
        reject("is not valid");
        continue;
      }
      have_sw = true;  // present, even if the value is bad
      std::uint64_t v = 0;
      if (!parse_u64(value, &v) || v > 0xFFFFFFFFu) {
        p.error(line, "sw expects a switch index, got '" + value + "'");
        ok = false;
        continue;
      }
      ev.sw = static_cast<std::uint32_t>(v);
    } else if (key == "tenant") {
      if (!rule.tenant) {
        reject("is not valid");
        continue;
      }
      have_tenant = true;  // present, even if the value is bad
      std::uint64_t v = 0;
      if (!parse_u64(value, &v) || v > 0xFFFFFFFFu) {
        p.error(line, "tenant expects a tenant index, got '" + value + "'");
        ok = false;
        continue;
      }
      ev.tenant = static_cast<std::uint32_t>(v);
    } else if (key == "hosts") {
      if (!rule.hosts) {
        reject("is not valid");
        continue;
      }
      have_hosts = true;  // present, even if the value is bad
      std::uint64_t v = 0;
      if (!parse_u64(value, &v) || v == 0 || v > 0xFFFFFFFFu) {
        p.error(line, "hosts expects a positive count, got '" + value + "'");
        ok = false;
        continue;
      }
      ev.hosts = static_cast<std::uint32_t>(v);
    } else if (key == "spread") {
      if (!rule.spread) {
        reject("is not valid");
        continue;
      }
      if (!parse_duration(value, &ev.spread)) {
        p.error(line, "spread expects a duration, got '" + value + "'");
        ok = false;
      }
    } else if (key == "duration") {
      if (!rule.duration) {
        reject("is not valid");
        continue;
      }
      have_duration = true;  // present, even if the value is bad
      if (!parse_duration(value, &ev.duration) || ev.duration <= 0) {
        p.error(line,
                "duration expects a positive duration, got '" + value + "'");
        ok = false;
        continue;
      }
    } else if (key == "factor") {
      if (!rule.factor) {
        reject("is not valid");
        continue;
      }
      if (!parse_f64(value, &ev.factor) || ev.factor <= 1.0) {
        p.error(line, "factor expects a number > 1, got '" + value + "'");
        ok = false;
      }
    } else if (key == "rate") {
      if (!rule.rate) {
        reject("is not valid");
        continue;
      }
      have_rate = true;  // present, even if the value is bad
      if (!parse_f64(value, &ev.rate) || ev.rate < 0.0 || ev.rate > 1.0) {
        p.error(line, "rate expects a number in [0, 1], got '" + value + "'");
        ok = false;
        continue;
      }
    } else if (key == "cap") {
      if (!rule.cap) {
        reject("is not valid");
        continue;
      }
      have_cap = true;  // present, even if the value is bad (0 = unlimited)
      if (!parse_u64(value, &ev.cap)) {
        p.error(line,
                "cap expects a non-negative integer, got '" + value + "'");
        ok = false;
        continue;
      }
    } else {
      p.error(line, "unknown event parameter '" + key + "'");
      ok = false;
    }
  }

  if (rule.sw && !have_sw) {
    p.error(line, std::string(to_string(ev.kind)) + " requires sw=<index>");
    ok = false;
  }
  if (rule.tenant && !have_tenant) {
    p.error(line,
            std::string(to_string(ev.kind)) + " requires tenant=<index>");
    ok = false;
  }
  if (rule.hosts && !have_hosts) {
    p.error(line, std::string(to_string(ev.kind)) + " requires hosts=<count>");
    ok = false;
  }
  if (rule.duration && !have_duration) {
    p.error(line,
            std::string(to_string(ev.kind)) + " requires duration=<time>");
    ok = false;
  }
  if (rule.rate && !have_rate) {
    p.error(line, std::string(to_string(ev.kind)) + " requires rate=<prob>");
    ok = false;
  }
  if (rule.cap && !have_cap) {
    p.error(line, std::string(to_string(ev.kind)) + " requires cap=<count>");
    ok = false;
  }
  if (ok) {
    p.spec.events.push_back(ev);
    p.event_lines.push_back(line);
  }
}

}  // namespace

const char* to_string(EventKind kind) noexcept {
  for (const EventName& e : kEventNames) {
    if (e.kind == kind) return e.name;
  }
  return "?";
}

std::optional<EventKind> paired_failure_kind(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kRecoverSwitch:
      return EventKind::kFailSwitch;
    case EventKind::kRecoverPeerLink:
      return EventKind::kFailPeerLink;
    case EventKind::kRecoverControlLink:
      return EventKind::kFailControlLink;
    default:
      return std::nullopt;
  }
}

const char* to_string(WorkloadKind kind) noexcept {
  switch (kind) {
    case WorkloadKind::kRealLike: return "real_like";
    case WorkloadKind::kSynthetic: return "synthetic";
    case WorkloadKind::kDriftingLocality: return "drifting_locality";
  }
  return "?";
}

bool parse_duration(const std::string& text, SimDuration* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || !std::isfinite(value) || value < 0) return false;
  const std::string unit = trim(std::string(end));
  double scale = 0;
  if (unit.empty() || unit == "s") scale = static_cast<double>(kSecond);
  else if (unit == "ns") scale = static_cast<double>(kNanosecond);
  else if (unit == "us") scale = static_cast<double>(kMicrosecond);
  else if (unit == "ms") scale = static_cast<double>(kMillisecond);
  else if (unit == "m") scale = static_cast<double>(kMinute);
  else if (unit == "h") scale = static_cast<double>(kHour);
  else return false;
  const double scaled = value * scale;
  // Reject anything that would overflow the int64 nanosecond clock
  // (llround on an out-of-range double is UB): 9e18 ns ≈ 285 years.
  if (scaled > 9.0e18) return false;
  *out = static_cast<SimDuration>(std::llround(scaled));
  return true;
}

std::string format_duration(SimDuration d) {
  if (d <= 0) return "0s";
  struct Unit {
    SimDuration scale;
    const char* suffix;
  };
  constexpr Unit kUnits[] = {{kHour, "h"},        {kMinute, "m"},
                             {kSecond, "s"},      {kMillisecond, "ms"},
                             {kMicrosecond, "us"}, {kNanosecond, "ns"}};
  for (const Unit& u : kUnits) {
    if (d % u.scale == 0) {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%" PRId64 "%s", d / u.scale, u.suffix);
      return buf;
    }
  }
  return "0s";  // unreachable: ns always divides
}

ParseResult parse_scenario(const std::string& text) {
  Parser p;
  Section section = Section::kNone;

  std::istringstream in(text);
  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    // Strip comment and surrounding whitespace. '#' always starts a
    // comment — values cannot contain it.
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::string s = trim(raw);
    if (s.empty()) continue;

    if (s.front() == '[') {
      if (s.back() != ']') {
        p.error(line, "unterminated section header '" + s + "'");
        section = Section::kUnknown;
        continue;
      }
      const std::string name = trim(s.substr(1, s.size() - 2));
      if (name == "scenario") section = Section::kScenario;
      else if (name == "topology") section = Section::kTopology;
      else if (name == "workload") section = Section::kWorkload;
      else if (name == "config") section = Section::kConfig;
      else if (name == "events") section = Section::kEvents;
      else {
        p.error(line, "unknown section [" + name + "]");
        section = Section::kUnknown;
      }
      continue;
    }

    if (section == Section::kUnknown) continue;  // already reported
    if (section == Section::kNone) {
      p.error(line, "content before the first [section] header");
      continue;
    }
    if (section == Section::kEvents) {
      parse_event_line(p, line, s);
      continue;
    }

    const std::size_t eq = s.find('=');
    if (eq == std::string::npos) {
      p.error(line, "expected key = value, got '" + s + "'");
      continue;
    }
    const std::string key = trim(s.substr(0, eq));
    const std::string value = trim(s.substr(eq + 1));
    if (key.empty()) {
      p.error(line, "empty key");
      continue;
    }

    std::string err;
    bool ok = true;
    switch (section) {
      case Section::kScenario:
        ok = set_scenario_key(p.spec, key, value, &err);
        break;
      case Section::kTopology:
        ok = set_topology_key(p.spec, key, value, &err);
        break;
      case Section::kWorkload:
        ok = set_workload_key(p.spec, key, value, &err);
        break;
      case Section::kConfig:
        ok = set_config_key(p.spec, key, value, &err);
        break;
      default:
        break;
    }
    if (!ok) p.error(line, err);
  }

  // Cross-field validation (anchored to line 0: these are document-level).
  if (p.spec.topology.min_vms_per_tenant >
      p.spec.topology.max_vms_per_tenant) {
    p.error(0, "[topology] min_vms_per_tenant exceeds max_vms_per_tenant");
  }

  // Cross-event validation: a recovery scheduled before every failure of
  // its component is a script bug — it fires as a no-op and the later
  // failure stands unrecovered. A recovery with no matching failure
  // anywhere in the script stays legal (a runtime no-op skip), so
  // scripts can recover pre-failed fixtures.
  for (std::size_t i = 0; i < p.spec.events.size(); ++i) {
    const ScenarioEvent& ev = p.spec.events[i];
    const std::optional<EventKind> fail_kind = paired_failure_kind(ev.kind);
    if (!fail_kind) continue;
    std::optional<SimTime> earliest;
    for (const ScenarioEvent& other : p.spec.events) {
      if (other.kind == *fail_kind && other.sw == ev.sw &&
          (!earliest || other.at < *earliest)) {
        earliest = other.at;
      }
    }
    if (earliest && ev.at < *earliest) {
      p.error(p.event_lines[i],
              std::string(to_string(ev.kind)) + " sw=" +
                  std::to_string(ev.sw) + " at " + format_duration(ev.at) +
                  " fires before its " + to_string(*fail_kind) + " at " +
                  format_duration(*earliest));
    }
  }

  ParseResult result;
  result.spec = std::move(p.spec);
  result.errors = std::move(p.errors);
  return result;
}

ParseResult parse_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ParseResult r;
    r.errors.push_back({0, "cannot open scenario file '" + path + "'"});
    return r;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_scenario(buf.str());
}

std::string ParseResult::error_text() const {
  std::string out;
  for (const Diagnostic& d : errors) {
    out += "line " + std::to_string(d.line) + ": " + d.message + "\n";
  }
  return out;
}

std::string serialize_scenario(const ScenarioSpec& spec) {
  std::ostringstream out;
  const core::Config& c = spec.config;

  out << "[scenario]\n";
  out << "name = " << spec.name << "\n";
  if (!spec.description.empty()) {
    out << "description = " << spec.description << "\n";
  }
  out << "seed = " << spec.seed << "\n";

  out << "\n[topology]\n";
  out << "switches = " << spec.topology.switches << "\n";
  out << "tenants = " << spec.topology.tenants << "\n";
  out << "min_vms_per_tenant = " << spec.topology.min_vms_per_tenant << "\n";
  out << "max_vms_per_tenant = " << spec.topology.max_vms_per_tenant << "\n";
  out << "vms_per_switch = " << spec.topology.vms_per_switch << "\n";

  const WorkloadSpec& w = spec.workload;
  out << "\n[workload]\n";
  out << "kind = " << to_string(w.kind) << "\n";
  out << "flows = " << w.flows << "\n";
  out << "horizon = " << format_duration(w.horizon) << "\n";
  out << "profile = " << (w.flat_profile ? "flat" : "business_day") << "\n";
  // Generator-specific keys are always emitted (the parser accepts them
  // under any kind, so dropping kind-irrelevant values would break the
  // exact parse(serialize(s)) == s round trip).
  out << "p = " << fmt_double(w.p) << "\n";
  out << "q = " << fmt_double(w.q) << "\n";
  out << "communities = " << w.communities << "\n";
  out << "intra_share = " << fmt_double(w.intra_share) << "\n";
  out << "phases = " << w.phases << "\n";
  out << "drift_fraction = " << fmt_double(w.drift_fraction) << "\n";

  out << "\n[config]\n";
  out << "mode = "
      << (c.mode == core::ControlMode::kLazyCtrl ? "lazyctrl" : "openflow")
      << "\n";
  out << "bootstrap = " << (spec.bootstrap_history ? "history" : "index")
      << "\n";
  out << "group_size_limit = " << c.grouping.group_size_limit << "\n";
  out << "dynamic_regrouping = "
      << (c.grouping.dynamic_regrouping ? "true" : "false") << "\n";
  out << "workload_growth_trigger = "
      << fmt_double(c.grouping.workload_growth_trigger) << "\n";
  out << "min_update_interval = "
      << format_duration(c.grouping.min_update_interval) << "\n";
  out << "stats_window = " << format_duration(c.grouping.stats_window)
      << "\n";
  out << "intensity_ewma_decay = "
      << fmt_double(c.grouping.intensity_ewma_decay) << "\n";
  out << "min_update_flow_evidence = "
      << fmt_double(c.grouping.min_update_flow_evidence) << "\n";
  out << "max_incupdate_iterations = " << c.grouping.max_incupdate_iterations
      << "\n";
  out << "parallel_incupdate = "
      << (c.grouping.parallel_incupdate ? "true" : "false") << "\n";
  out << "preload_on_update = "
      << (c.grouping.preload_on_update ? "true" : "false") << "\n";
  out << "transition_window = "
      << format_duration(c.grouping.transition_window) << "\n";
  out << "host_exclusion_tenant_threshold = "
      << c.grouping.host_exclusion_tenant_threshold << "\n";
  const char* dgm_mode = "off";
  if (c.dgm.mode == core::DgmMode::kPeriodic) dgm_mode = "periodic";
  if (c.dgm.mode == core::DgmMode::kDriftTriggered) {
    dgm_mode = "drift_triggered";
  }
  out << "dgm.mode = " << dgm_mode << "\n";
  out << "dgm.maintenance_period = "
      << format_duration(c.dgm.maintenance_period) << "\n";
  out << "dgm.inter_fraction_limit = "
      << fmt_double(c.dgm.inter_fraction_limit) << "\n";
  out << "dgm.degradation_factor = " << fmt_double(c.dgm.degradation_factor)
      << "\n";
  out << "dgm.degradation_floor = " << fmt_double(c.dgm.degradation_floor)
      << "\n";
  out << "dgm.size_skew_limit = " << fmt_double(c.dgm.size_skew_limit)
      << "\n";
  out << "dgm.min_flow_evidence = " << fmt_double(c.dgm.min_flow_evidence)
      << "\n";
  out << "dgm.cooldown = " << format_duration(c.dgm.cooldown) << "\n";
  out << "dgm.max_moves_per_round = " << c.dgm.max_moves_per_round << "\n";
  out << "dgm.max_merges_per_round = " << c.dgm.max_merges_per_round << "\n";
  out << "dgm.max_splits_per_round = " << c.dgm.max_splits_per_round << "\n";
  out << "dgm.min_gain_fraction = " << fmt_double(c.dgm.min_gain_fraction)
      << "\n";
  out << "fib.layout = "
      << (c.fib.layout == core::GFibLayout::kSliced ? "sliced" : "linear")
      << "\n";
  out << "fib.bloom_bits = " << c.fib.bloom_bits << "\n";
  out << "fib.bloom_hashes = " << c.fib.bloom_hashes << "\n";
  out << "fib.report_false_positives = "
      << (c.fib.report_false_positives ? "true" : "false") << "\n";
  out << "rules.rule_ttl = " << format_duration(c.rules.rule_ttl) << "\n";
  out << "rules.flow_table_capacity = " << c.rules.flow_table_capacity
      << "\n";
  out << "batching.flow_batch_size = " << c.batching.flow_batch_size << "\n";
  out << "runtime.num_shards = " << c.runtime.num_shards << "\n";
  out << "runtime.mode = "
      << (c.runtime.mode == core::RuntimeMode::kDeterministic
              ? "deterministic"
              : "fast")
      << "\n";
  out << "runtime.sync_window = " << format_duration(c.runtime.sync_window)
      << "\n";
  out << "controller.servers = " << c.controller.servers << "\n";
  out << "ctrl.loss_rate = " << fmt_double(c.controller.loss_rate) << "\n";
  out << "ctrl.dup_rate = " << fmt_double(c.controller.dup_rate) << "\n";
  out << "ctrl.queue_cap = " << c.controller.queue_cap << "\n";
  out << "ctrl.punt_retry_limit = " << c.controller.punt_retry_limit << "\n";
  out << "ctrl.punt_retry_base = "
      << format_duration(c.controller.punt_retry_base) << "\n";
  out << "ctrl.reconcile_period = "
      << format_duration(c.controller.reconcile_period) << "\n";
  out << "latency.host_link = " << format_duration(c.latency.host_link)
      << "\n";
  out << "latency.datapath = " << format_duration(c.latency.datapath) << "\n";
  out << "latency.switch_processing = "
      << format_duration(c.latency.switch_processing) << "\n";
  out << "latency.control_link = "
      << format_duration(c.latency.control_link) << "\n";
  out << "latency.controller_service = "
      << format_duration(c.latency.controller_service) << "\n";
  out << "state_report_period = " << format_duration(c.state_report_period)
      << "\n";
  out << "failover = " << (c.failover_enabled ? "true" : "false") << "\n";
  out << "keepalive_period = " << format_duration(c.keepalive_period) << "\n";
  out << "keepalive_loss_threshold = " << c.keepalive_loss_threshold << "\n";
  out << "switch_reboot_delay = " << format_duration(c.switch_reboot_delay)
      << "\n";

  out << "\n[events]\n";
  for (const ScenarioEvent& ev : spec.events) {
    out << "at=" << format_duration(ev.at) << " " << to_string(ev.kind);
    const EventParamRule rule = param_rule(ev.kind);
    if (rule.sw) out << " sw=" << ev.sw;
    if (rule.tenant) out << " tenant=" << ev.tenant;
    if (rule.hosts) out << " hosts=" << ev.hosts;
    if (rule.spread) out << " spread=" << format_duration(ev.spread);
    if (rule.duration) out << " duration=" << format_duration(ev.duration);
    if (rule.factor) out << " factor=" << fmt_double(ev.factor);
    if (rule.rate) out << " rate=" << fmt_double(ev.rate);
    if (rule.cap) out << " cap=" << ev.cap;
    out << "\n";
  }
  return out.str();
}

bool apply_override(ScenarioSpec& spec, const std::string& assignment,
                    std::string* error) {
  const std::size_t eq = assignment.find('=');
  if (eq == std::string::npos) {
    if (error) *error = "override expects section.key=value";
    return false;
  }
  const std::string dotted = trim(assignment.substr(0, eq));
  const std::string value = trim(assignment.substr(eq + 1));
  const std::size_t dot = dotted.find('.');
  if (dot == std::string::npos) {
    if (error) {
      *error = "override key '" + dotted +
               "' lacks a section prefix (scenario. | topology. | "
               "workload. | config.)";
    }
    return false;
  }
  const std::string section = dotted.substr(0, dot);
  const std::string key = dotted.substr(dot + 1);
  std::string err;
  bool ok = false;
  if (section == "scenario") ok = set_scenario_key(spec, key, value, &err);
  else if (section == "topology") ok = set_topology_key(spec, key, value, &err);
  else if (section == "workload") ok = set_workload_key(spec, key, value, &err);
  else if (section == "config") ok = set_config_key(spec, key, value, &err);
  else err = "unknown section '" + section + "' in override";
  if (!ok && error) *error = err;
  return ok;
}

}  // namespace lazyctrl::scenario
