// Declarative scenario specifications — the `.scn` format.
//
// A scenario file describes a complete experiment in one place: the
// topology to build, the workload to generate, the run configuration and
// a timed event script. The format is line-oriented key=value with
// `[section]` headers and `#` comments — no external parser dependency,
// mirroring the repo-wide no-new-deps rule:
//
//   # Cascading failures inside one group.
//   [scenario]
//   name = cascading_failure
//   seed = 7
//
//   [topology]
//   switches = 48
//   tenants = 30
//
//   [workload]
//   kind = real_like
//   flows = 20000
//   horizon = 2h
//
//   [config]
//   group_size_limit = 12
//   failover = true
//
//   [events]
//   at=10m fail_switch sw=3
//   at=12m recover_switch sw=3
//
// parse_scenario() collects ALL diagnostics (each tagged with its
// 1-based line number) instead of stopping at the first;
// serialize_scenario() renders the canonical form, and
// parse(serialize(spec)) reproduces the spec exactly (round-trip,
// enforced by tests/scenario_test.cpp). apply_override() applies one
// `section.key=value` assignment through the same key grammar — the
// `lazyctrl_run --set` hook.
//
// docs/SCENARIOS.md is the operator-facing reference for the grammar and
// every event primitive's semantics.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/time.h"
#include "core/config.h"

namespace lazyctrl::scenario {

/// Timed event primitives a scenario script can inject. Semantics (and
/// the `core::Network` seam each one drives) are documented per-value
/// and in docs/SCENARIOS.md.
enum class EventKind : std::uint8_t {
  kFailSwitch,          ///< wheel: switch `sw` goes down
  kRecoverSwitch,       ///< wheel: switch `sw` comes back (resync)
  kFailPeerLink,        ///< wheel: ring link `sw` -> downstream fails
  kRecoverPeerLink,     ///< wheel: that ring link recovers
  kFailControlLink,     ///< wheel: `sw`'s controller spoke fails
  kRecoverControlLink,  ///< wheel: that spoke recovers
  kControllerOutage,    ///< controller stops serving for `duration`
  kMigrationBurst,      ///< `hosts` VMs live-migrate over `spread`
  kTenantArrival,       ///< dormant tenant `tenant` is announced
  kTenantDeparture,     ///< tenant `tenant` leaves (rules revoked)
  kTrafficSurge,        ///< flow arrivals x`factor` for `duration`
  kForceRegroup,        ///< immediate DGM round / IncUpdate renegotiation
  kSetControlLoss,      ///< control-channel loss probability := `rate`
  kSetControlDup,       ///< control-channel duplication prob. := `rate`
  kSetCtrlQueueCap,     ///< controller backlog drop-tail cap := `cap`
  kReconcile,           ///< anti-entropy audit/repair of FIB state
  kCheckpoint,          ///< serialize the full run state at this fence
};

/// Canonical spelling of an event primitive (the `.scn` keyword).
[[nodiscard]] const char* to_string(EventKind kind) noexcept;

/// The failure kind a recovery event undoes (kRecoverSwitch ->
/// kFailSwitch, ...), or std::nullopt for non-recovery kinds. Shared by
/// the parser, the runner's validator and the fuzzer so "recovery
/// scheduled before its failure" means the same thing everywhere.
[[nodiscard]] std::optional<EventKind> paired_failure_kind(
    EventKind kind) noexcept;

/// One line of the `[events]` section. Only the fields relevant to
/// `kind` are meaningful; the rest keep their defaults (which is what
/// makes the defaulted equality a faithful round-trip check).
struct ScenarioEvent {
  SimTime at = 0;
  EventKind kind = EventKind::kForceRegroup;
  std::uint32_t sw = 0;       ///< switch-targeted wheel events
  std::uint32_t tenant = 0;   ///< tenant_arrival / tenant_departure
  std::uint32_t hosts = 0;    ///< migration_burst: VMs to move
  SimDuration spread = 0;     ///< migration_burst: window the moves span
  SimDuration duration = 0;   ///< controller_outage / traffic_surge
  double factor = 2.0;        ///< traffic_surge arrival multiplier
  double rate = 0.0;          ///< set_control_loss / set_control_dup
  std::uint64_t cap = 0;      ///< set_ctrl_queue_cap (0 = unlimited)

  bool operator==(const ScenarioEvent&) const = default;
};

/// `[topology]` — multi-tenant edge topology sizing (topo::builder).
struct TopologySpec {
  std::size_t switches = 48;
  std::size_t tenants = 30;
  std::size_t min_vms_per_tenant = 10;
  std::size_t max_vms_per_tenant = 30;
  std::size_t vms_per_switch = 12;

  bool operator==(const TopologySpec&) const = default;
};

enum class WorkloadKind : std::uint8_t {
  kRealLike,          ///< enterprise-trace stand-in (workload::generators)
  kSynthetic,         ///< the paper's (p, q) synthetic procedure
  kDriftingLocality,  ///< phase-drifting switch communities (DGM stress)
};

[[nodiscard]] const char* to_string(WorkloadKind kind) noexcept;

/// `[workload]` — trace generator selection and sizing.
struct WorkloadSpec {
  WorkloadKind kind = WorkloadKind::kRealLike;
  std::size_t flows = 20'000;
  SimDuration horizon = 2 * kHour;
  bool flat_profile = false;  ///< profile = flat | business_day
  // kSynthetic only:
  double p = 90.0;
  double q = 10.0;
  // kDriftingLocality only:
  std::size_t communities = 6;
  double intra_share = 0.85;
  std::size_t phases = 4;
  double drift_fraction = 0.25;

  bool operator==(const WorkloadSpec&) const = default;
};

/// A parsed scenario: metadata + topology + workload + run config +
/// event script. `config` is a full core::Config; the `[config]` section
/// exposes the load-bearing knobs by name (see spec.cpp / SCENARIOS.md)
/// and leaves the rest at their defaults.
struct ScenarioSpec {
  // [scenario]
  std::string name = "unnamed";
  std::string description;
  std::uint64_t seed = 1;

  TopologySpec topology;
  WorkloadSpec workload;
  core::Config config;
  /// `[config] bootstrap = history | index`: IniGroup from the first
  /// hour of the generated trace, or index-order grouping.
  bool bootstrap_history = true;

  /// Event script, in file order (the runner schedules by `at`; the
  /// simulator orders equal timestamps by scheduling order, i.e. file
  /// order — deterministic).
  std::vector<ScenarioEvent> events;

  bool operator==(const ScenarioSpec&) const = default;
};

/// One parse problem, anchored to its 1-based source line (0 = file
/// level, e.g. unreadable path).
struct Diagnostic {
  int line = 0;
  std::string message;
};

struct ParseResult {
  ScenarioSpec spec;
  std::vector<Diagnostic> errors;

  [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
  /// All diagnostics as "line N: message" lines (for CLI / test output).
  [[nodiscard]] std::string error_text() const;
};

/// Parses a scenario document. Collects every diagnostic it can instead
/// of stopping at the first; `spec` holds whatever parsed cleanly (only
/// trustworthy when ok()).
[[nodiscard]] ParseResult parse_scenario(const std::string& text);

/// Reads and parses `path`; an unreadable file yields one line-0
/// diagnostic.
[[nodiscard]] ParseResult parse_scenario_file(const std::string& path);

/// Renders the canonical form: every accepted key with its current
/// value, sections in fixed order, events in script order.
/// parse_scenario(serialize_scenario(s)).spec == s for any valid spec.
[[nodiscard]] std::string serialize_scenario(const ScenarioSpec& spec);

/// Applies one `section.key=value` assignment (e.g.
/// "config.runtime.num_shards=2", "workload.flows=500",
/// "scenario.seed=9") through the same key grammar as the parser.
/// Returns false and sets `*error` on an unknown key or malformed value.
bool apply_override(ScenarioSpec& spec, const std::string& assignment,
                    std::string* error);

/// Duration literal: a non-negative decimal number with an optional unit
/// suffix (ns, us, ms, s, m, h); a bare number means seconds. Exposed
/// for tests.
bool parse_duration(const std::string& text, SimDuration* out);
/// Largest-exact-unit rendering ("90s", "2h", "1500ms"); inverse of
/// parse_duration for every representable value.
[[nodiscard]] std::string format_duration(SimDuration d);

}  // namespace lazyctrl::scenario
