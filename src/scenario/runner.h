// ScenarioRunner — executes a parsed ScenarioSpec end to end.
//
// The runner is the bridge between the declarative spec and the live
// subsystems: it builds the multi-tenant topology, generates and shapes
// the workload (traffic surges and tenant activity windows are applied
// to the trace BEFORE replay so the flow schedule itself is part of the
// deterministic input), constructs a core::Network, schedules the event
// script into the discrete-event simulator through the Network's
// scenario seams, and replays — single-threaded, batched or sharded,
// whatever the spec's `runtime.*` knobs select.
//
// Determinism contract: every scenario event commits coordinator-side
// state and is fenced by Simulator::next_event_time() exactly like the
// existing periodic machinery, so the same spec produces bit-identical
// RunMetrics on every run and across `runtime.num_shards` settings in
// deterministic mode (regression-tested in tests/scenario_test.cpp).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/network.h"
#include "scenario/spec.h"
#include "topo/topology.h"
#include "workload/generators.h"
#include "workload/trace.h"

namespace lazyctrl::scenario {

class ScenarioRunner {
 public:
  explicit ScenarioRunner(ScenarioSpec spec) : spec_(std::move(spec)) {}

  /// Builds topology + trace + network, validates the event script
  /// against them (switch/tenant/host indices in range, events within
  /// the horizon, failover events only with failover enabled), schedules
  /// the script and replays. Returns false and sets `*error` on semantic
  /// problems. One call per runner.
  bool run(std::string* error);

  /// How the event script fared at sim time.
  struct EventCounts {
    std::size_t scheduled = 0;  ///< events scheduled into the simulator
    std::size_t applied = 0;    ///< found their target live and took effect
    std::size_t skipped = 0;    ///< fired but were no-ops (e.g. regroup
                                ///< found nothing to do, switch already up)
  };

  [[nodiscard]] const ScenarioSpec& spec() const noexcept { return spec_; }
  // The accessors below require a successful run().
  [[nodiscard]] const core::RunMetrics& metrics() const {
    return net_->metrics();
  }
  [[nodiscard]] const core::Network& network() const { return *net_; }
  /// Mutable view for post-run observability hooks (e.g. wiring the
  /// network's stats into an obs::Registry for --stats-dump).
  [[nodiscard]] core::Network& network() { return *net_; }
  [[nodiscard]] const workload::Trace& trace() const { return *trace_; }
  [[nodiscard]] const EventCounts& event_counts() const noexcept {
    return counts_;
  }

 private:
  bool validate(std::string* error) const;
  void build_trace();
  void apply_event(const ScenarioEvent& ev);
  void schedule_migration_burst(const ScenarioEvent& ev,
                                std::uint64_t stream_id);
  /// Per-tenant activity windows [from, to) implied by the event script
  /// (arrival opens, departure closes; both default to the full run).
  [[nodiscard]] std::vector<workload::TenantActivityWindow>
  tenant_activity_windows() const;

  ScenarioSpec spec_;
  topo::Topology topology_;
  std::optional<workload::Trace> trace_;
  std::unique_ptr<core::Network> net_;
  EventCounts counts_;
  bool ran_ = false;
};

}  // namespace lazyctrl::scenario
