// ScenarioRunner — executes a parsed ScenarioSpec end to end.
//
// The runner is the bridge between the declarative spec and the live
// subsystems: it builds the multi-tenant topology, generates and shapes
// the workload (traffic surges and tenant activity windows are applied
// to the trace BEFORE replay so the flow schedule itself is part of the
// deterministic input), constructs a core::Network, schedules the event
// script into the discrete-event simulator through the Network's
// scenario seams, and replays — single-threaded, batched or sharded,
// whatever the spec's `runtime.*` knobs select.
//
// Determinism contract: every scenario event commits coordinator-side
// state and is fenced by Simulator::next_event_time() exactly like the
// existing periodic machinery, so the same spec produces bit-identical
// RunMetrics on every run and across `runtime.num_shards` settings in
// deterministic mode (regression-tested in tests/scenario_test.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/network.h"
#include "scenario/spec.h"
#include "topo/topology.h"
#include "workload/generators.h"
#include "workload/trace.h"

namespace lazyctrl::ckpt {
class StateAccess;
}

namespace lazyctrl::scenario {

class ScenarioRunner {
 public:
  explicit ScenarioRunner(ScenarioSpec spec) : spec_(std::move(spec)) {}

  /// Builds topology + trace + network, validates the event script
  /// against them (switch/tenant/host indices in range, events within
  /// the horizon, failover events only with failover enabled), schedules
  /// the script and replays. Returns false and sets `*error` on semantic
  /// problems. One call per runner.
  bool run(std::string* error);

  /// Builds the topology and validates the event script against it —
  /// everything run() checks before generating a workload — without
  /// replaying. Unlike run() it may be called repeatedly, and a later
  /// run() on the same runner still works (the topology is built once).
  bool validate_only(std::string* error);

  /// Evaluates core::check_invariants() (core/invariants.h) after every
  /// scheduled scenario event — at the simulator fence the event ran in —
  /// and again at end of run, where the trace-level conservation check
  /// (every generated flow was seen) is added. Must be called before
  /// run(). Violations accumulate in invariant_violations(); run() still
  /// returns true, the caller decides whether they fail the run. The
  /// checker is read-only, so a checked run stays bit-identical to an
  /// unchecked one.
  void enable_invariant_checks() noexcept { check_invariants_ = true; }
  [[nodiscard]] const std::vector<std::string>& invariant_violations()
      const noexcept {
    return invariant_violations_;
  }

  /// How the event script fared at sim time.
  struct EventCounts {
    std::size_t scheduled = 0;  ///< events scheduled into the simulator
    std::size_t applied = 0;    ///< found their target live and took effect
    std::size_t skipped = 0;    ///< fired but were no-ops (e.g. regroup
                                ///< found nothing to do, switch already up)
  };

  // --- checkpoint / resume (src/ckpt) ---

  /// One snapshot taken at a checkpoint fence. `bytes` is empty and
  /// `error` set when serialization failed (e.g. in-flight work at the
  /// fence); the run itself continues either way.
  struct Snapshot {
    SimTime at = 0;
    std::vector<std::uint8_t> bytes;
    std::string error;
  };

  /// Additional checkpoint fences beyond the spec's `checkpoint_at`
  /// events (the `--checkpoint-every` CLI hook): absolute sim times,
  /// scheduled as one-shot fence events. Must be called before run().
  void add_checkpoint_times(std::vector<SimTime> times);

  /// Snapshots taken during run()/finish(), in fence order.
  [[nodiscard]] const std::vector<Snapshot>& snapshots() const noexcept {
    return snapshots_;
  }

  /// Stage 1 of a resume: rebuilds a runner from snapshot bytes — spec,
  /// topology, trace and the full network/simulator state at the
  /// checkpointed fence. Returns nullptr and sets `*error` on a corrupt,
  /// truncated or version-skewed snapshot. The restored runner replays
  /// nothing until finish().
  static std::unique_ptr<ScenarioRunner> restore(
      const std::vector<std::uint8_t>& bytes, std::string* error);

  /// Stage 2: drives the restored replay to the trace horizon. The
  /// resulting metrics() are bit-identical to the uninterrupted run's.
  bool finish(std::string* error);

  /// Re-serializes the current state of a restored (not yet finished)
  /// runner. restore(checkpoint(s)) followed by save_now() reproduces the
  /// snapshot byte for byte — the round-trip identity ckpt_test enforces.
  bool save_now(std::vector<std::uint8_t>* out, std::string* error);

  [[nodiscard]] const ScenarioSpec& spec() const noexcept { return spec_; }
  // The accessors below require a successful run().
  [[nodiscard]] const core::RunMetrics& metrics() const {
    return net_->metrics();
  }
  [[nodiscard]] const core::Network& network() const { return *net_; }
  /// Mutable view for post-run observability hooks (e.g. wiring the
  /// network's stats into an obs::Registry for --stats-dump).
  [[nodiscard]] core::Network& network() { return *net_; }
  [[nodiscard]] const workload::Trace& trace() const { return *trace_; }
  [[nodiscard]] const EventCounts& event_counts() const noexcept {
    return counts_;
  }

 private:
  /// The snapshot codec: reads/writes the runner's scheduling bookkeeping
  /// (script event ids, checkpoint fences, event counts) alongside the
  /// network state, and rebuilds a restored runner through the private
  /// construction path.
  friend class lazyctrl::ckpt::StateAccess;

  /// Range-checks the spec's VM bounds and builds the topology (once);
  /// shared head of run() and validate_only().
  bool prepare_topology(std::string* error);
  bool validate(std::string* error) const;
  void build_trace();
  void apply_event(const ScenarioEvent& ev);
  /// Runs the invariant checker now, prefixing violations with `where`.
  void run_invariant_check(const std::string& where, bool end_of_run);
  void schedule_migration_burst(const ScenarioEvent& ev,
                                std::uint64_t stream_id);
  /// Per-tenant activity windows [from, to) implied by the event script
  /// (arrival opens, departure closes; both default to the full run).
  [[nodiscard]] std::vector<workload::TenantActivityWindow>
  tenant_activity_windows() const;
  /// Serializes the current state into `snapshots_` (fence callback of
  /// both `checkpoint_at` script events and --checkpoint-every one-shots).
  void take_checkpoint();
  /// End-of-run invariant tail shared by run() and finish().
  void end_of_run_checks();

  ScenarioSpec spec_;
  topo::Topology topology_;
  std::optional<workload::Trace> trace_;
  std::unique_ptr<core::Network> net_;
  EventCounts counts_;
  bool ran_ = false;
  bool topology_built_ = false;
  bool check_invariants_ = false;
  std::vector<std::string> invariant_violations_;

  // --- checkpoint bookkeeping ---
  /// Simulator event id per script event (0 = not scheduled: build-time
  /// kinds, or already fired on a restored runner); parallel to
  /// spec_.events. Lets a snapshot classify pending script events.
  std::vector<sim::EventId> script_event_ids_;
  /// --checkpoint-every fences: absolute times and their one-shot ids.
  std::vector<SimTime> extra_checkpoint_times_;
  std::vector<sim::EventId> extra_event_ids_;
  std::vector<Snapshot> snapshots_;
  /// Index the next snapshot gets (restored runners continue the
  /// uninterrupted run's numbering).
  std::uint32_t next_snapshot_index_ = 0;
  /// Valid on a restored runner: the snapshot's own index and where the
  /// flow-injection chain picks up.
  bool restored_ = false;
  std::uint32_t restore_index_ = 0;
  core::Network::ResumeCursor resume_cursor_;
};

}  // namespace lazyctrl::scenario
