#!/usr/bin/env bash
# Verifies that every relative markdown link in README.md and docs/*.md
# points at an existing file (anchors and external URLs are skipped).
# Usage: scripts/check_doc_links.sh   (run from the repo root)
set -u

fail=0
for md in README.md docs/*.md; do
  [ -f "$md" ] || continue
  dir=$(dirname "$md")
  # Extract (target) parts of [text](target) links.
  while IFS= read -r link; do
    target=${link%%#*}          # drop anchors
    [ -z "$target" ] && continue
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
    esac
    if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
      echo "BROKEN LINK in $md: $link"
      fail=1
    fi
  done < <(grep -oE '\[[^]]*\]\([^)]+\)' "$md" | sed -E 's/.*\(([^)]+)\)/\1/')
done

# Scenario coverage: every path that looks like examples/scenarios/*.scn
# mentioned anywhere in README.md or docs/*.md must exist on disk (these
# usually sit in code blocks, which the link check above does not see),
# and every committed scenario must be documented in docs/SCENARIOS.md.
for md in README.md docs/*.md; do
  [ -f "$md" ] || continue
  while IFS= read -r ref; do
    if [ ! -f "$ref" ]; then
      echo "MISSING SCENARIO referenced in $md: $ref"
      fail=1
    fi
  done < <(grep -ohE 'examples/scenarios/[A-Za-z0-9_.-]+\.scn' "$md" | sort -u)
done
for scn in examples/scenarios/*.scn; do
  [ -f "$scn" ] || continue
  if ! grep -q "$(basename "$scn")" docs/SCENARIOS.md 2>/dev/null; then
    echo "UNDOCUMENTED SCENARIO: $scn is not mentioned in docs/SCENARIOS.md"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "doc link check FAILED"
  exit 1
fi
echo "doc link check OK"
