#!/usr/bin/env bash
# Verifies that every relative markdown link in README.md and docs/*.md
# points at an existing file (anchors and external URLs are skipped).
# Usage: scripts/check_doc_links.sh   (run from the repo root)
set -u

fail=0
for md in README.md docs/*.md; do
  [ -f "$md" ] || continue
  dir=$(dirname "$md")
  # Extract (target) parts of [text](target) links.
  while IFS= read -r link; do
    target=${link%%#*}          # drop anchors
    [ -z "$target" ] && continue
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
    esac
    if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
      echo "BROKEN LINK in $md: $link"
      fail=1
    fi
  done < <(grep -oE '\[[^]]*\]\([^)]+\)' "$md" | sed -E 's/.*\(([^)]+)\)/\1/')
done

if [ "$fail" -ne 0 ]; then
  echo "doc link check FAILED"
  exit 1
fi
echo "doc link check OK"
