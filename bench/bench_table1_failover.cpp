// Demonstrates Table I / §III-E: the failure-detection wheel of one local
// control group. Injects every failure class, prints what the wheel
// inferred (Table I) and the recovery action taken, with detection times.
#include <cstdio>

#include "bench_common.h"
#include "core/failover.h"
#include "harness.h"
#include "sim/simulator.h"

using namespace lazyctrl;

namespace {

void print_events(const core::FailureWheel& wheel, const char* scenario,
                  SimTime injected_at) {
  std::printf("\n--- %s (injected at t=%.1fs) ---\n", scenario,
              to_seconds(injected_at));
  if (wheel.events().empty()) {
    std::printf("  (no detections)\n");
    return;
  }
  for (const core::WheelEvent& e : wheel.events()) {
    std::printf("  t=%6.1fs  S%-3u  inferred=%-14s  %s\n", to_seconds(e.at),
                e.subject.value(), core::to_string(e.kind),
                e.action.c_str());
  }
}

core::Config wheel_config() {
  core::Config cfg;
  cfg.failover_enabled = true;
  cfg.keepalive_period = kSecond;
  cfg.keepalive_loss_threshold = 3;
  cfg.switch_reboot_delay = 10 * kSecond;
  return cfg;
}

std::vector<SwitchId> members(std::size_t n) {
  std::vector<SwitchId> m;
  for (std::uint32_t i = 0; i < n; ++i) m.push_back(SwitchId{i});
  return m;
}

int body(benchx::BenchReport& report) {
  int scenarios_with_detections = 0;

  // Scenario 1: control link failure -> relay via upstream neighbour.
  {
    sim::Simulator s;
    core::FailureWheel wheel(s, members(8), SwitchId{0}, {SwitchId{4}},
                             wheel_config());
    wheel.start();
    s.schedule_at(5 * kSecond, [&] { wheel.fail_control_link(SwitchId{3}); });
    s.run_until(30 * kSecond);
    print_events(wheel, "control link S3 <-> controller fails",
                 5 * kSecond);
    std::printf("  control messages of S3 relayed via upstream S%u: %s\n",
                wheel.upstream_of(SwitchId{3}).value(),
                wheel.control_relayed(SwitchId{3}) ? "yes" : "no");
    if (!wheel.events().empty()) {
      ++scenarios_with_detections;
      report.metric("detection_seconds_control_link",
                    to_seconds(wheel.events().front().at - 5 * kSecond),
                    "s");
    }
  }

  // Scenario 2: peer link failure away from the designated switch.
  {
    sim::Simulator s;
    core::FailureWheel wheel(s, members(8), SwitchId{0}, {SwitchId{4}},
                             wheel_config());
    wheel.start();
    s.schedule_at(5 * kSecond,
                  [&] { wheel.fail_peer_link(SwitchId{5}, SwitchId{6}); });
    s.run_until(30 * kSecond);
    print_events(wheel, "peer link S5 <-> S6 fails", 5 * kSecond);
    std::printf("  designated unchanged: S%u\n", wheel.designated().value());
    if (!wheel.events().empty()) {
      ++scenarios_with_detections;
      report.metric("detection_seconds_peer_link",
                    to_seconds(wheel.events().front().at - 5 * kSecond),
                    "s");
    }
  }

  // Scenario 3: peer link failure at the designated switch -> re-election.
  {
    sim::Simulator s;
    core::FailureWheel wheel(s, members(8), SwitchId{5}, {SwitchId{2}},
                             wheel_config());
    wheel.start();
    s.schedule_at(5 * kSecond,
                  [&] { wheel.fail_peer_link(SwitchId{5}, SwitchId{6}); });
    s.run_until(30 * kSecond);
    print_events(wheel, "peer link at designated S5 fails", 5 * kSecond);
    std::printf("  designated re-elected: S%u\n", wheel.designated().value());
    if (!wheel.events().empty()) ++scenarios_with_detections;
  }

  // Scenario 4: switch failure -> outage, reboot, resync.
  {
    sim::Simulator s;
    core::FailureWheel wheel(s, members(8), SwitchId{2}, {SwitchId{6}},
                             wheel_config());
    wheel.start();
    s.schedule_at(5 * kSecond, [&] { wheel.fail_switch(SwitchId{2}); });
    s.run_until(60 * kSecond);
    print_events(wheel, "designated switch S2 fails (reboots after 10s)",
                 5 * kSecond);
    std::printf("  back online: %s; designated now S%u\n",
                wheel.is_switch_up(SwitchId{2}) ? "yes" : "no",
                wheel.designated().value());
    if (!wheel.events().empty()) {
      ++scenarios_with_detections;
      report.metric("detection_seconds_switch_failure",
                    to_seconds(wheel.events().front().at - 5 * kSecond),
                    "s");
    }
  }

  std::printf("\nAll four Table I rows exercised: detection fires after %d "
              "missed keep-alives (%.0fs at a %.0fs period).\n",
              3, 3.0, 1.0);
  report.metric("scenarios_with_detections",
                static_cast<double>(scenarios_with_detections), "scenarios");
  return scenarios_with_detections == 4 ? 0 : 1;
}

}  // namespace

int main() {
  return benchx::run_benchmark(
      "table1_failover", "Table I — Failure inference on the detection wheel",
      "loss on ring-up only -> peer link (up); ring-down only -> peer link "
      "(down); spoke only -> control link; all three -> switch",
      {}, body);
}
