// Dynamic Group Maintenance under traffic drift (Fig. 6/7 style).
//
// A drifting-locality workload re-homes a quarter of the edge switches to a
// different traffic community every 3 hours. A frozen initial grouping
// (IniGroup only) degrades as locality shifts; DGM keeps repairing it with
// bounded-cost incremental plans. Reported per series: inter-group traffic
// fraction per 2-hour bucket, total controller load, and — for the DGM
// runs — the migration cost (staged flow-mods) of every maintenance round.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/network.h"
#include "dgm/dgm.h"
#include "harness.h"
#include "workload/intensity.h"

using namespace lazyctrl;

namespace {

struct Series {
  std::string name;
  std::vector<double> inter_fraction;  // per 2-hour bucket
  std::uint64_t packet_ins = 0;
  std::uint64_t flows_inter = 0;
  std::uint64_t flows_seen = 0;
  std::uint64_t dgm_flow_mods = 0;
  std::uint64_t dgm_plans = 0;
  std::vector<dgm::MaintenanceRound> rounds;
};

core::Config base_config() {
  core::Config cfg;
  cfg.mode = core::ControlMode::kLazyCtrl;
  // 96 switches / 6 communities with some slack above the ideal 16, so the
  // regrouper can use cheap single-switch moves, not only merge-and-splits.
  cfg.grouping.group_size_limit = 18;
  cfg.grouping.dynamic_regrouping = false;
  return cfg;
}

Series run(const topo::Topology& topo, const workload::Trace& trace,
           core::Config cfg, const std::string& name) {
  core::Network net(topo, cfg);
  // IniGroup from the first phase's traffic, as in the paper's setup phase.
  net.bootstrap(workload::build_intensity_graph(trace, topo, 0,
                                                trace.horizon / 8));
  net.replay(trace);

  Series s;
  s.name = name;
  const auto& m = net.metrics();
  for (std::size_t b = 0; b + 1 < m.flow_arrivals.bucket_count(); b += 2) {
    const double total =
        static_cast<double>(m.flow_arrivals.bucket_events(b) +
                            m.flow_arrivals.bucket_events(b + 1));
    const double inter =
        static_cast<double>(m.inter_group_arrivals.bucket_events(b) +
                            m.inter_group_arrivals.bucket_events(b + 1));
    s.inter_fraction.push_back(total > 0 ? inter / total : 0.0);
  }
  s.packet_ins = m.controller_packet_ins;
  s.flows_inter = m.flows_inter_group;
  s.flows_seen = m.flows_seen;
  s.dgm_flow_mods = m.dgm_flow_mods;
  s.dgm_plans = m.dgm_plans_applied;
  if (const dgm::MaintainerStats* st = net.dgm_stats()) {
    s.rounds = st->history;
  }
  return s;
}

int body(benchx::BenchReport& report) {
  Rng topo_rng(501);
  topo::MultiTenantOptions topt;
  topt.switch_count = 96;
  topt.tenant_count = 40;
  topt.min_vms_per_tenant = 20;
  topt.max_vms_per_tenant = 60;
  topt.vms_per_switch = 24;
  const topo::Topology topo = topo::build_multi_tenant(topt, topo_rng);

  Rng trace_rng(502);
  workload::DriftingLocalityOptions wopt;
  wopt.total_flows = static_cast<std::size_t>(150'000 * benchx::bench_scale());
  wopt.community_count = 6;
  wopt.phases = 8;
  wopt.drift_fraction = 0.25;
  wopt.intra_community_share = 0.85;
  const workload::Trace trace =
      workload::generate_drifting_locality(topo, wopt, trace_rng);
  std::printf("topology: %zu switches, %zu hosts; trace: %zu flows, "
              "%zu phases, %.0f%% of switches re-home per phase\n\n",
              topo.switch_count(), topo.host_count(), trace.flow_count(),
              wopt.phases, 100.0 * wopt.drift_fraction);

  std::vector<Series> all;
  {
    core::Config cfg = base_config();
    all.push_back(run(topo, trace, cfg, "static (frozen IniGroup)"));
  }
  {
    core::Config cfg = base_config();
    cfg.grouping.dynamic_regrouping = true;
    all.push_back(run(topo, trace, cfg, "legacy IncUpdate"));
  }
  {
    core::Config cfg = base_config();
    cfg.dgm.mode = core::DgmMode::kPeriodic;
    all.push_back(run(topo, trace, cfg, "DGM periodic"));
  }
  {
    core::Config cfg = base_config();
    cfg.dgm.mode = core::DgmMode::kDriftTriggered;
    all.push_back(run(topo, trace, cfg, "DGM drift-triggered"));
  }

  std::printf("Inter-group traffic fraction per 2-hour bucket:\n");
  std::printf("%-28s", "series \\ hours");
  for (int b = 0; b < 12; ++b) std::printf("%6d-%-2d", 2 * b, 2 * b + 2);
  std::printf("\n");
  for (const Series& s : all) {
    std::printf("%-28s", s.name.c_str());
    for (double v : s.inter_fraction) std::printf("%9.3f", v);
    std::printf("\n");
  }

  std::printf("\nTotals:\n");
  std::printf("  %-28s %10s %12s %12s %10s\n", "series", "Winter",
              "ctrl reqs", "DGM plans", "flow-mods");
  for (const Series& s : all) {
    const double frac =
        s.flows_seen > 0 ? static_cast<double>(s.flows_inter) /
                               static_cast<double>(s.flows_seen)
                         : 0.0;
    std::printf("  %-28s %10.4f %12llu %12llu %10llu\n", s.name.c_str(),
                frac, static_cast<unsigned long long>(s.packet_ins),
                static_cast<unsigned long long>(s.dgm_plans),
                static_cast<unsigned long long>(s.dgm_flow_mods));
  }

  for (const Series& s : all) {
    if (s.rounds.empty()) continue;
    std::printf("\nMigration cost per maintenance round — %s:\n",
                s.name.c_str());
    std::printf("  %8s %-22s %6s %7s %7s %10s %9s %9s\n", "t (h)",
                "trigger", "moves", "merges", "splits", "flow-mods",
                "W before", "W after");
    for (const dgm::MaintenanceRound& r : s.rounds) {
      if (!r.plan_applied) continue;
      std::printf("  %8.2f %-22s %6zu %7zu %7zu %10zu %9.3f %9.3f\n",
                  to_seconds(r.at) / 3600.0, to_string(r.verdict.kind),
                  r.moves, r.merges, r.splits, r.flow_mods, r.inter_before,
                  r.inter_after);
    }
  }

  // Acceptance check: DGM keeps the realised inter-group fraction strictly
  // below the frozen static grouping.
  const double static_frac =
      static_cast<double>(all[0].flows_inter) /
      static_cast<double>(std::max<std::uint64_t>(all[0].flows_seen, 1));
  const char* keys[] = {"static", "legacy_incupdate", "dgm_periodic",
                        "dgm_drift_triggered"};
  bool ok = true;
  for (std::size_t i = 0; i < all.size(); ++i) {
    const double frac =
        static_cast<double>(all[i].flows_inter) /
        static_cast<double>(std::max<std::uint64_t>(all[i].flows_seen, 1));
    if (i >= 2 && frac >= static_frac) ok = false;
    report.metric(std::string("inter_group_fraction_") + keys[i], frac,
                  "fraction");
    report.controller_load(std::string("packet_ins_") + keys[i],
                           static_cast<double>(all[i].packet_ins));
  }
  report.metric("dgm_flow_mods",
                static_cast<double>(all.back().dgm_flow_mods), "flow_mods");
  std::printf("\n%s: DGM inter-group fraction %s static baseline (%.4f)\n",
              ok ? "PASS" : "FAIL", ok ? "below" : "NOT below", static_frac);
  if (!ok && all.back().dgm_plans == 0) {
    std::printf("note: no DGM plans were applied — at this flow scale the "
                "decayed estimate stays below dgm.min_flow_evidence, so the "
                "maintainer (correctly) refuses to regroup on noise. Try a "
                "larger LAZYCTRL_BENCH_SCALE.\n");
  }
  return ok ? 0 : 1;
}

}  // namespace

int main() {
  return benchx::run_benchmark(
      "dgm_drift", "DGM — inter-group traffic under drifting locality",
      "static IniGroup-only grouping vs online Dynamic Group Maintenance",
      {}, body);
}
