// Control-plane fault tolerance — delivery vs channel loss.
//
// The same surge-plus-outage scenario is replayed with the control
// channel at 0%, 1% and 10% per-message loss (duplication at a fifth of
// the loss rate, outage backlog capped at 8). Lost punt legs retry on
// the deterministic exponential-backoff schedule; exhausted punts
// degrade to §III-D intra-group flooding. Reported per leg: the
// delivered / degraded / dropped flow fractions and the end-to-end
// first-packet p99, i.e. what unreliability costs in latency while
// delivery stays total.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/metrics.h"
#include "harness.h"
#include "obs/flow_latency.h"
#include "scenario/runner.h"
#include "scenario/spec.h"

using namespace lazyctrl;

namespace {

constexpr const char* kBaseSpec = R"(
[scenario]
name = ctrl_faults_leg
seed = 31

[topology]
switches = 48
tenants = 30
min_vms_per_tenant = 10
max_vms_per_tenant = 30
vms_per_switch = 12

[workload]
kind = real_like
flows = 12000
horizon = 2h
profile = business_day

[config]
mode = lazyctrl
group_size_limit = 12
stats_window = 1m
controller.servers = 1
ctrl.punt_retry_limit = 3
ctrl.punt_retry_base = 2ms
ctrl.queue_cap = 8

[events]
at=52m traffic_surge factor=3 duration=10m
at=55m controller_outage duration=30s
)";

struct Leg {
  const char* tag;
  double loss;
  std::uint64_t flows = 0;
  std::uint64_t degraded = 0;
  std::uint64_t dropped = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t admission_drops = 0;
  double e2e_p99_ns = 0;
};

int run_leg(Leg& leg) {
  scenario::ParseResult parsed = scenario::parse_scenario(kBaseSpec);
  if (!parsed.ok()) {
    std::fprintf(stderr, "base spec invalid:\n%s", parsed.error_text().c_str());
    return 1;
  }
  scenario::ScenarioSpec spec = parsed.spec;
  spec.config.controller.loss_rate = leg.loss;
  spec.config.controller.dup_rate = leg.loss / 5.0;
  spec.workload.flows = static_cast<std::size_t>(
      static_cast<double>(spec.workload.flows) * benchx::bench_scale());

  obs::flow_recorder().clear();
  scenario::ScenarioRunner runner(spec);
  std::string error;
  if (!runner.run(&error)) {
    std::fprintf(stderr, "leg %s failed: %s\n", leg.tag, error.c_str());
    return 1;
  }
  const core::RunMetrics& m = runner.metrics();
  leg.flows = m.flows_seen;
  leg.degraded = m.flows_degraded;
  leg.dropped = m.flows_dropped;
  leg.retries = m.punt_retries;
  leg.timeouts = m.punt_timeouts;
  leg.admission_drops = m.ctrl_admission_drops;
  leg.e2e_p99_ns =
      obs::flow_recorder().stage_histogram(obs::FlowStage::kE2e).quantile(0.99);
  return 0;
}

int body(benchx::BenchReport& report) {
  // Stage histograms only — no flight-recorder ring; fault decisions are
  // keyed on splitmix64(flow id), so every leg replays bit-identically.
  obs::flow_recorder().enable(0);

  std::vector<Leg> legs = {
      {"loss_0", 0.0}, {"loss_1pct", 0.01}, {"loss_10pct", 0.10}};
  for (Leg& leg : legs) {
    if (run_leg(leg) != 0) return 1;
  }

  std::printf("%-12s %8s %10s %10s %10s %9s %9s %10s %12s\n", "loss", "flows",
              "delivered", "degraded", "dropped", "retries", "timeouts",
              "adm drops", "e2e p99 ms");
  bool ok = true;
  for (const Leg& leg : legs) {
    const double flows = static_cast<double>(std::max<std::uint64_t>(
        leg.flows, 1));
    const double delivered_frac =
        static_cast<double>(leg.flows - leg.dropped) / flows;
    const double degraded_frac = static_cast<double>(leg.degraded) / flows;
    const double dropped_frac = static_cast<double>(leg.dropped) / flows;
    std::printf("%-12s %8llu %10.4f %10.4f %10.4f %9llu %9llu %10llu %12.3f\n",
                leg.tag, static_cast<unsigned long long>(leg.flows),
                delivered_frac, degraded_frac, dropped_frac,
                static_cast<unsigned long long>(leg.retries),
                static_cast<unsigned long long>(leg.timeouts),
                static_cast<unsigned long long>(leg.admission_drops),
                leg.e2e_p99_ns / 1e6);
    const std::string tag = leg.tag;
    report.metric("delivered_fraction_" + tag, delivered_frac, "fraction");
    report.metric("degraded_fraction_" + tag, degraded_frac, "fraction");
    report.metric("dropped_fraction_" + tag, dropped_frac, "fraction");
    report.metric("latency_e2e_p99_ns_" + tag, leg.e2e_p99_ns, "ns");
    report.metric("punt_retries_" + tag, static_cast<double>(leg.retries),
                  "attempts");
    // LazyCtrl's acceptance bar: >= 99% delivery (degraded included) at
    // every loss rate, zero drops ever.
    if (delivered_frac < 0.99 || leg.dropped != 0) ok = false;
  }
  const Leg& worst = legs.back();
  report.metric("flows_degraded", static_cast<double>(worst.degraded),
                "flows");
  report.metric("admission_drops",
                static_cast<double>(worst.admission_drops), "requests");
  report.metric("punt_timeouts", static_cast<double>(worst.timeouts), "flows");

  std::printf("\n%s: delivery >= 99%% with zero drops at every loss rate\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main() {
  return benchx::run_benchmark(
      "ctrl_faults", "Control-plane faults — delivery vs channel loss",
      "lossy control channel: deterministic punt retry, bounded admission, "
      "degradation to intra-group flooding (paper §III-D fallback)",
      {}, body);
}
