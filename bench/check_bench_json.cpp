// CI gate for the benchmark JSON pipeline.
//
//   check_bench_json <dir> [expected_name...]
//
// Validates every BENCH_*.json under <dir> against the harness schema and,
// when expected names are listed, fails if any BENCH_<name>.json is
// missing. Exit codes: 0 ok, 1 validation failure, 2 missing file / bad
// usage.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "harness.h"

namespace fs = std::filesystem;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <dir> [expected_name...]\n", argv[0]);
    return 2;
  }
  const fs::path dir = argv[1];
  if (!fs::is_directory(dir)) {
    std::fprintf(stderr, "check_bench_json: %s is not a directory\n",
                 argv[1]);
    return 2;
  }

  std::set<std::string> found;
  int bad = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string file = entry.path().filename().string();
    if (file.rfind("BENCH_", 0) != 0 ||
        entry.path().extension() != ".json") {
      continue;
    }
    std::ifstream in(entry.path());
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    if (!lazyctrl::benchx::validate_bench_json(buf.str(), &error)) {
      std::fprintf(stderr, "INVALID %s: %s\n", file.c_str(), error.c_str());
      ++bad;
    } else {
      std::printf("ok      %s\n", file.c_str());
      found.insert(
          file.substr(6, file.size() - 6 - 5));  // strip BENCH_ and .json
    }
  }

  int missing = 0;
  for (int i = 2; i < argc; ++i) {
    if (!found.contains(argv[i])) {
      std::fprintf(stderr, "MISSING BENCH_%s.json\n", argv[i]);
      ++missing;
    }
  }

  std::printf("%zu valid, %d invalid, %d missing\n", found.size(), bad,
              missing);
  if (bad > 0) return 1;
  if (missing > 0) return 2;
  return 0;
}
