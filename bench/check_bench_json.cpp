// CI gate for the benchmark JSON pipeline.
//
//   check_bench_json <dir> [expected_name...]
//
// Validates every BENCH_*.json under <dir> against the harness schema and,
// when expected names are listed, fails if any BENCH_<name>.json is
// missing. Exit codes: 0 ok, 1 validation failure, 2 missing file / bad
// usage.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "harness.h"

namespace fs = std::filesystem;

namespace {

/// Per-bench required metric keys, beyond the generic schema: these are
/// the acceptance-bearing series CI tracks across PRs, so a rename or a
/// silently dropped metric fails the gate instead of going unnoticed.
const std::map<std::string, std::vector<std::string>>& required_metrics() {
  static const std::map<std::string, std::vector<std::string>> kRequired = {
      {"parallel_scaling",
       {"throughput_baseline_flows_per_sec",
        "throughput_fast_8shard_flows_per_sec",
        "throughput_deterministic_8shard_flows_per_sec",
        "speedup_fast_8shard", "deterministic_bit_identical", "cpu_cores"}},
      {"micro_datapath",
       {"throughput_batched_flows_per_sec", "batched_speedup",
        "gfib_scan_ns", "gfib_scan_sliced_ns", "gfib_scan_speedup"}},
      {"ctrl_faults",
       {"delivered_fraction_loss_0", "delivered_fraction_loss_1pct",
        "delivered_fraction_loss_10pct", "degraded_fraction_loss_10pct",
        "dropped_fraction_loss_10pct", "latency_e2e_p99_ns_loss_10pct",
        "flows_degraded", "admission_drops"}},
      {"obs_overhead",
       {"replay_flows_per_sec_tracing_off", "replay_flows_per_sec_tracing_on",
        "tracing_on_overhead_pct", "tracing_off_overhead_pct",
        "replay_flows_per_sec_sampling_on", "sampling_on_overhead_pct",
        "rss_delta_bytes", "trace_events_recorded"}},
  };
  return kRequired;
}

/// Scenario-engine outputs (lazyctrl_run emits BENCH_scenario_<name>.json
/// through the same schema-v1 path): every scenario run must carry the
/// core accounting series plus the rerun-determinism verdict.
const std::vector<std::string>& scenario_required_metrics() {
  static const std::vector<std::string> kRequired = {
      "flows_total", "controller_packet_ins", "events_applied",
      "deterministic_rerun_identical", "latency_e2e_p99_ns"};
  return kRequired;
}

/// Extracts the median value of metric `key`, matching the harness
/// emitter's exact shape `"key": {"value": <number>`. Returns false when
/// the metric is absent or malformed.
bool metric_value(const std::string& json_text, const std::string& key,
                  double* out) {
  const std::string needle = "\"" + key + "\": {\"value\": ";
  const std::size_t at = json_text.find(needle);
  if (at == std::string::npos) return false;
  return std::sscanf(json_text.c_str() + at + needle.size(), "%lf", out) == 1;
}

/// True when the document carries a metric named `key`. Matches the
/// harness emitter's exact metric-entry shape via metric_value (one
/// needle definition for both the presence gate and the advisory), so a
/// key quoted in free-text fields (title, paper_reference) or embedded in
/// another metric's name cannot satisfy the gate.
bool has_metric(const std::string& json_text, const std::string& key) {
  double ignored;
  return metric_value(json_text, key, &ignored);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <dir> [expected_name...]\n", argv[0]);
    return 2;
  }
  const fs::path dir = argv[1];
  if (!fs::is_directory(dir)) {
    std::fprintf(stderr, "check_bench_json: %s is not a directory\n",
                 argv[1]);
    return 2;
  }

  std::set<std::string> found;
  int bad = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string file = entry.path().filename().string();
    if (file.rfind("BENCH_", 0) != 0 ||
        entry.path().extension() != ".json") {
      continue;
    }
    std::ifstream in(entry.path());
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    if (!lazyctrl::benchx::validate_bench_json(buf.str(), &error)) {
      std::fprintf(stderr, "INVALID %s: %s\n", file.c_str(), error.c_str());
      ++bad;
    } else {
      const std::string name =
          file.substr(6, file.size() - 6 - 5);  // strip BENCH_ and .json
      bool complete = true;
      const std::vector<std::string>* required = nullptr;
      if (const auto it = required_metrics().find(name);
          it != required_metrics().end()) {
        required = &it->second;
      } else if (name.rfind("scenario_", 0) == 0) {
        required = &scenario_required_metrics();
      }
      if (required != nullptr) {
        for (const std::string& key : *required) {
          if (!has_metric(buf.str(), key)) {
            std::fprintf(stderr, "INVALID %s: required metric \"%s\" missing\n",
                         file.c_str(), key.c_str());
            complete = false;
          }
        }
      }
      // A scenario that failed its rerun-determinism check is a bug even
      // when the document itself is schema-valid.
      if (complete && name.rfind("scenario_", 0) == 0) {
        double deterministic = 1.0;
        if (metric_value(buf.str(), "deterministic_rerun_identical",
                         &deterministic) &&
            deterministic != 1.0) {
          std::fprintf(stderr,
                       "INVALID %s: deterministic_rerun_identical = %g "
                       "(scenario reruns diverged)\n",
                       file.c_str(), deterministic);
          complete = false;
        }
      }
      if (!complete) {
        ++bad;
        continue;
      }
      // Non-fatal perf advisory: the bit-sliced G-FIB scan should beat
      // the linear layout comfortably (the PR's acceptance floor is 2x at
      // full scale; 1.5x here leaves headroom for noisy smoke runners).
      // A warning, not a failure — smoke-scale timings are too jittery
      // for a hard gate, but a silent regression should still be visible
      // in the CI log.
      if (name == "micro_datapath") {
        double speedup = 0;
        if (metric_value(buf.str(), "gfib_scan_speedup", &speedup) &&
            speedup < 1.5) {
          std::printf("WARNING %s: gfib_scan_speedup %.2fx < 1.5x "
                      "(non-fatal; sliced G-FIB scan regressed?)\n",
                      file.c_str(), speedup);
        }
      }
      // Surface the optional stats section (obs::Registry snapshot) so a
      // silently dropped --stats-dump shows up as "0 stats" in the CI log.
      std::size_t stat_count = 0;
      lazyctrl::benchx::JsonValue doc;
      if (lazyctrl::benchx::parse_json(buf.str(), &doc, nullptr)) {
        if (const auto* stats = doc.find("stats")) {
          stat_count = stats->object.size();
        }
      }
      if (stat_count > 0) {
        std::printf("ok      %s (%zu stats)\n", file.c_str(), stat_count);
      } else {
        std::printf("ok      %s\n", file.c_str());
      }
      found.insert(name);
    }
  }

  int missing = 0;
  for (int i = 2; i < argc; ++i) {
    if (!found.contains(argv[i])) {
      std::fprintf(stderr, "MISSING BENCH_%s.json\n", argv[i]);
      ++missing;
    }
  }

  std::printf("%zu valid, %d invalid, %d missing\n", found.size(), bad,
              missing);
  if (bad > 0) return 1;
  if (missing > 0) return 2;
  return 0;
}
