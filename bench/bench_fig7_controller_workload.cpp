// Reproduces Fig. 7: controller workload per 2-hour bucket over a 24-hour
// trace, for standard OpenFlow and four LazyCtrl variants
// (real/expanded trace x static/dynamic grouping).
//
// Paper result: LazyCtrl reduces controller workload by 61-82%; the real
// trace stays flat under LazyCtrl while the expanded trace needs dynamic
// incremental updates to stay low.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/network.h"
#include "harness.h"
#include "workload/intensity.h"

using namespace lazyctrl;

namespace {

struct Series {
  std::string name;
  std::vector<double> rps;  // 12 buckets of 2 h
  std::uint64_t packet_ins = 0;
};

Series run(const topo::Topology& topo, const workload::Trace& trace,
           core::ControlMode mode, bool dynamic, const std::string& name) {
  core::Config cfg;
  cfg.mode = mode;
  cfg.grouping.group_size_limit = 46;
  cfg.grouping.dynamic_regrouping = dynamic;
  core::Network net(topo, cfg);
  // Initial grouping from the first-hour traffic (as in the paper §V-D).
  net.bootstrap(workload::build_intensity_graph(trace, topo, 0, kHour));
  net.replay(trace);

  Series s;
  s.name = name;
  const auto& series = net.metrics().controller_requests;
  for (std::size_t b = 0; b + 1 < series.bucket_count(); b += 2) {
    const double events = static_cast<double>(series.bucket_events(b)) +
                          static_cast<double>(series.bucket_events(b + 1));
    s.rps.push_back(events / to_seconds(2 * kHour));
  }
  s.packet_ins = net.metrics().controller_packet_ins;
  return s;
}

int body(benchx::BenchReport& report) {
  const topo::Topology topo = benchx::real_topology();
  const workload::Trace real = benchx::real_trace(topo);
  // The +30% extra flows recur among a fixed set of new host pairs (heavy
  // enough per pair that the new structure is learnable), matching the
  // paper's observation that IncUpdate keeps absorbing the added load.
  Rng exp_rng(404);
  const workload::Trace expanded = workload::expand_trace(
      real, topo, 0.30, 8 * kHour, 24 * kHour, exp_rng,
      /*flows_per_new_pair=*/300.0);
  std::printf("topology: %zu switches, %zu hosts; real trace: %zu flows; "
              "expanded: %zu flows\n\n",
              topo.switch_count(), topo.host_count(), real.flow_count(),
              expanded.flow_count());

  std::vector<Series> all;
  all.push_back(run(topo, real, core::ControlMode::kOpenFlow, false,
                    "OpenFlow"));
  all.push_back(run(topo, real, core::ControlMode::kLazyCtrl, false,
                    "LazyCtrl (real, static)"));
  all.push_back(run(topo, real, core::ControlMode::kLazyCtrl, true,
                    "LazyCtrl (real, dynamic)"));
  all.push_back(run(topo, expanded, core::ControlMode::kLazyCtrl, false,
                    "LazyCtrl (expanded, static)"));
  all.push_back(run(topo, expanded, core::ControlMode::kLazyCtrl, true,
                    "LazyCtrl (expanded, dynamic)"));

  std::printf("%-28s", "series \\ hours");
  for (int b = 0; b < 12; ++b) std::printf("%7d-%-2d", 2 * b, 2 * b + 2);
  std::printf("\n");
  for (const Series& s : all) {
    std::printf("%-28s", s.name.c_str());
    for (double v : s.rps) std::printf("%10.2f", v);
    std::printf("\n");
  }

  const double base = static_cast<double>(all[0].packet_ins);
  const char* keys[] = {"openflow", "lazyctrl_real_static",
                        "lazyctrl_real_dynamic", "lazyctrl_expanded_static",
                        "lazyctrl_expanded_dynamic"};
  report.controller_load("packet_ins_openflow", base);
  std::printf("\nWorkload reduction vs OpenFlow (paper: 61%%-82%%):\n");
  for (std::size_t i = 1; i < all.size(); ++i) {
    const double reduction =
        100.0 * (1.0 - static_cast<double>(all[i].packet_ins) / base);
    std::printf("  %-28s %5.1f%%  (%llu vs %llu requests)\n",
                all[i].name.c_str(), reduction,
                static_cast<unsigned long long>(all[i].packet_ins),
                static_cast<unsigned long long>(all[0].packet_ins));
    report.controller_load(std::string("packet_ins_") + keys[i],
                           static_cast<double>(all[i].packet_ins));
    report.metric(std::string("workload_reduction_pct_") + keys[i], reduction,
                  "percent");
  }
  return 0;
}

}  // namespace

int main() {
  return benchx::run_benchmark(
      "fig7_controller_workload",
      "Fig. 7 — Controller workload (requests/s per 2-hour bucket)",
      "OpenFlow vs LazyCtrl {real,expanded} x {static,dynamic}; 61-82% "
      "workload reduction",
      {}, body);
}
