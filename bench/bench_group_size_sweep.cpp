// Appendix C, "Methods for Determining the Right Group Size": sweep the
// group size limit on the real trace and measure both sides of the trade —
// controller workload (laziness) and per-switch control overhead (G-FIB
// memory, peer-link chatter).
#include <cstdio>

#include "bench_common.h"
#include "core/network.h"
#include "harness.h"
#include "workload/intensity.h"

using namespace lazyctrl;

namespace {

int body(benchx::BenchReport& report) {
  const topo::Topology topo = benchx::real_topology();
  const workload::Trace trace = benchx::real_trace(topo);
  const auto history = workload::build_intensity_graph(trace, topo, 0, kHour);

  // OpenFlow reference for the reduction column.
  std::uint64_t baseline_requests = 0;
  {
    core::Config cfg;
    cfg.mode = core::ControlMode::kOpenFlow;
    core::Network net(topo, cfg);
    net.bootstrap();
    net.replay(trace);
    baseline_requests = net.metrics().controller_packet_ins;
  }

  std::printf("%-8s %8s %12s %12s %16s %16s\n", "limit", "groups",
              "packet-ins", "reduction", "G-FIB B/switch", "peer-link msgs");
  for (std::size_t limit : {8u, 16u, 23u, 46u, 92u, 136u}) {
    core::Config cfg;
    cfg.mode = core::ControlMode::kLazyCtrl;
    cfg.grouping.group_size_limit = limit;
    cfg.grouping.dynamic_regrouping = false;
    core::Network net(topo, cfg);
    net.bootstrap(history);
    net.replay(trace);
    const core::RunMetrics& m = net.metrics();
    std::printf("%-8zu %8zu %12llu %11.1f%% %16zu %16llu\n", limit,
                net.grouping().group_count,
                (unsigned long long)m.controller_packet_ins,
                100.0 * (1.0 - static_cast<double>(m.controller_packet_ins) /
                                   static_cast<double>(baseline_requests)),
                (limit - 1) * 2048,
                (unsigned long long)m.peer_link_messages);
    const std::string suffix = "_limit" + std::to_string(limit);
    report.controller_load("packet_ins" + suffix,
                           static_cast<double>(m.controller_packet_ins));
    report.memory_bytes("gfib_bytes_per_switch" + suffix,
                        static_cast<double>((limit - 1) * 2048));
  }
  report.controller_load("packet_ins_openflow_baseline",
                         static_cast<double>(baseline_requests));
  std::printf("\nOpenFlow baseline: %llu packet-ins.\n",
              (unsigned long long)baseline_requests);
  std::printf("The monotone workload/memory trade is what the appendix's "
              "bargaining resolves at runtime.\n");
  return 0;
}

}  // namespace

int main() {
  return benchx::run_benchmark(
      "group_size_sweep",
      "Appendix C — group size limit sweep (workload vs switch overhead)",
      "larger groups -> lazier controller but more per-switch state", {},
      body);
}
