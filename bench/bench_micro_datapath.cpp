// Micro-benchmarks (google-benchmark) for the per-packet and per-regroup
// hot paths: Bloom filter ops, G-FIB queries, flow-table lookups, the
// Fig. 5 forwarding decision, and the partitioner.
#include <benchmark/benchmark.h>

#include "bloom/bloom_filter.h"
#include "common/rng.h"
#include "core/edge_switch.h"
#include "core/sgi.h"
#include "graph/multilevel_partitioner.h"
#include "openflow/flow_table.h"

namespace lazyctrl {
namespace {

void BM_BloomInsert(benchmark::State& state) {
  BloomFilter f(BloomParameters{16384, 8});
  std::uint64_t key = 0;
  for (auto _ : state) {
    f.insert(key++);
    if ((key & 0x3FF) == 0) f.clear();  // keep fill ratio realistic
  }
}
BENCHMARK(BM_BloomInsert);

void BM_BloomQuery(benchmark::State& state) {
  BloomFilter f(BloomParameters{16384, 8});
  for (std::uint64_t k = 0; k < 24; ++k) f.insert(k * 977);
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.may_contain(key++));
  }
}
BENCHMARK(BM_BloomQuery);

void BM_GFibQuery(benchmark::State& state) {
  // A paper-sized G-FIB: 45 peer filters, 24 hosts each.
  core::GFib gfib(BloomParameters{16384, 8});
  std::uint32_t host = 0;
  for (std::uint32_t peer = 1; peer <= 45; ++peer) {
    std::vector<MacAddress> macs;
    for (int h = 0; h < 24; ++h) macs.push_back(MacAddress::for_host(host++));
    gfib.sync_peer(SwitchId{peer}, macs);
  }
  std::uint32_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gfib.query(MacAddress::for_host(probe++ % 2048)));
  }
}
BENCHMARK(BM_GFibQuery);

void BM_FlowTableLookup(benchmark::State& state) {
  openflow::FlowTable table;
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(state.range(0));
       ++i) {
    openflow::FlowRule r;
    r.priority = 10;
    r.match.tenant = TenantId{i % 16};
    r.match.dst_mac = MacAddress::for_host(i);
    r.action.type = openflow::ActionType::kEncapTo;
    table.install(r);
  }
  net::Packet p;
  p.tenant = TenantId{3};
  std::uint32_t dst = 0;
  for (auto _ : state) {
    p.dst_mac = MacAddress::for_host(dst++ % state.range(0));
    benchmark::DoNotOptimize(table.lookup(p, 0));
  }
}
BENCHMARK(BM_FlowTableLookup)->Arg(64)->Arg(512)->Arg(4096);

void BM_EdgeSwitchDecide(benchmark::State& state) {
  core::Config cfg;
  core::EdgeSwitch sw(SwitchId{0}, IpAddress::for_switch(0),
                      MacAddress{0x060000000000ULL}, cfg);
  // Local hosts + a 45-peer G-FIB.
  std::uint32_t host = 0;
  for (int h = 0; h < 24; ++h) {
    sw.lfib().learn(MacAddress::for_host(host), HostId{host}, TenantId{0});
    ++host;
  }
  for (std::uint32_t peer = 1; peer <= 45; ++peer) {
    std::vector<MacAddress> macs;
    for (int h = 0; h < 24; ++h) macs.push_back(MacAddress::for_host(host++));
    sw.gfib().sync_peer(SwitchId{peer}, macs);
  }
  net::Packet p;
  p.tenant = TenantId{0};
  p.src_mac = MacAddress::for_host(0);
  std::uint32_t dst = 0;
  for (auto _ : state) {
    p.dst_mac = MacAddress::for_host(dst++ % (46 * 24));
    benchmark::DoNotOptimize(
        sw.decide(p, 0, core::ControlMode::kLazyCtrl));
  }
}
BENCHMARK(BM_EdgeSwitchDecide);

graph::WeightedGraph random_intensity(std::size_t n, std::size_t deg,
                                      std::uint64_t seed) {
  Rng rng(seed);
  graph::WeightedGraph g(n);
  for (graph::VertexId u = 0; u < n; ++u) {
    for (std::size_t d = 0; d < deg; ++d) {
      const auto v = static_cast<graph::VertexId>(rng.next_below(n));
      if (v != u) g.add_edge(u, v, 1.0 + rng.next_double() * 9);
    }
  }
  return g;
}

void BM_MlkpPartition(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  graph::WeightedGraph g = random_intensity(n, 8, 42);
  graph::MultilevelPartitioner mp;
  const std::size_t limit = 46;
  graph::PartitionConstraints c{static_cast<double>(limit)};
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(mp.partition(g, (n + limit - 1) / limit, c, rng));
  }
}
BENCHMARK(BM_MlkpPartition)->Arg(272)->Arg(1024)->Arg(2713)
    ->Unit(benchmark::kMillisecond);

void BM_IncUpdate(benchmark::State& state) {
  graph::WeightedGraph g = random_intensity(272, 8, 42);
  core::Sgi sgi(core::SgiOptions{.group_size_limit = 46,
                                 .max_iterations = 1});
  Rng rng(7);
  const core::Grouping base = sgi.initial_grouping(g, rng);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    core::Grouping grouping = base;
    Rng r(seed++);
    benchmark::DoNotOptimize(sgi.incremental_update(grouping, g, r));
  }
}
BENCHMARK(BM_IncUpdate)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lazyctrl

BENCHMARK_MAIN();
