// Micro + end-to-end benchmarks of the per-packet hot path.
//
// The headline numbers are the end-to-end replay throughputs of the two
// datapath modes on an identical workload:
//
//   * single_packet — the legacy one-event-per-flow datapath
//     (flow_batch_size = 1), i.e. the "before" of the batched-datapath
//     work;
//   * batched — the batched pipeline (flow_batch_size = 64): one simulator
//     event per flow batch, per-switch staged decide_batch, hash-cached
//     G-FIB scans, zero steady-state allocation.
//
// Topology, trace and intensity history are constructed ONCE outside every
// timed region (an earlier version of this bench timed setup together with
// the replay, which made before/after comparisons dishonest); each timed
// region covers exactly one Network::replay(). The harness repeats the
// whole body and reports medians in BENCH_micro_datapath.json.
//
// The micro section times the individual hot-path kernels (Bloom probe,
// G-FIB scan, L-FIB lookup, flow-table lookup, Fig. 5 decision) in ns/op.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "bloom/bloom_filter.h"
#include "common/rng.h"
#include "core/edge_switch.h"
#include "core/network.h"
#include "harness.h"
#include "openflow/flow_table.h"
#include "workload/intensity.h"

using namespace lazyctrl;

namespace {

template <typename T>
inline void do_not_optimize(T const& value) {
  asm volatile("" : : "g"(value) : "memory");
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Times `op(i)` over `iters` iterations; returns ns per op.
template <typename Fn>
double ns_per_op(std::size_t iters, Fn&& op) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) op(i);
  return seconds_since(t0) * 1e9 / static_cast<double>(iters);
}

/// Shared fixture, built once (outside all timed regions) and reused by
/// every harness repetition.
struct Setup {
  topo::Topology topo;
  workload::Trace trace;
  graph::WeightedGraph history;

  Setup()
      : topo(make_topo()),
        trace(make_trace(topo)),
        history(workload::build_intensity_graph(trace, topo, 0, kHour)) {}

  static topo::Topology make_topo() {
    Rng rng(901);
    topo::MultiTenantOptions opt;
    opt.switch_count = 96;
    opt.tenant_count = 40;
    opt.min_vms_per_tenant = 20;
    opt.max_vms_per_tenant = 60;
    opt.vms_per_switch = 24;
    return topo::build_multi_tenant(opt, rng);
  }
  static workload::Trace make_trace(const topo::Topology& topo) {
    Rng rng(902);
    workload::RealLikeOptions opt;
    opt.total_flows =
        static_cast<std::size_t>(200000 * benchx::bench_scale());
    return workload::generate_real_like(topo, opt, rng);
  }
};

struct ReplayResult {
  double seconds = 0;
  double flows_per_sec = 0;
  double packets_per_sec = 0;
  std::uint64_t packet_ins = 0;
  double first_packet_ms = 0;
  std::size_t gfib_bytes = 0;
};

ReplayResult run_replay(const Setup& s, std::size_t flow_batch_size) {
  core::Config cfg;
  cfg.mode = core::ControlMode::kLazyCtrl;
  cfg.grouping.group_size_limit = 18;
  cfg.batching.flow_batch_size = flow_batch_size;
  core::Network net(s.topo, cfg);  // construction + bootstrap untimed
  net.bootstrap(s.history);

  const auto t0 = std::chrono::steady_clock::now();
  net.replay(s.trace);  // ONLY the replay is timed
  const double dt = seconds_since(t0);

  ReplayResult r;
  r.seconds = dt;
  r.flows_per_sec = static_cast<double>(net.metrics().flows_seen) / dt;
  r.packets_per_sec =
      static_cast<double>(net.metrics().packets_accounted) / dt;
  r.packet_ins = net.metrics().controller_packet_ins;
  r.first_packet_ms = net.metrics().first_packet_latency_ms.mean();
  r.gfib_bytes = net.total_gfib_bytes();
  return r;
}

int body(benchx::BenchReport& report) {
  static const Setup setup;  // built once, outside every timed region

  // --- end-to-end datapath throughput, before (single) vs after (batch) ---
  const ReplayResult single = run_replay(setup, 1);
  const ReplayResult batched = run_replay(setup, 64);
  const double speedup = single.seconds / batched.seconds;

  std::printf("end-to-end replay (%zu flows, %zu switches):\n",
              setup.trace.flow_count(), setup.topo.switch_count());
  std::printf("  %-22s %10.3fs %12.0f flows/s %14.0f packets/s\n",
              "single-packet (before)", single.seconds, single.flows_per_sec,
              single.packets_per_sec);
  std::printf("  %-22s %10.3fs %12.0f flows/s %14.0f packets/s\n",
              "batched (after)", batched.seconds, batched.flows_per_sec,
              batched.packets_per_sec);
  std::printf("  batched speedup: %.2fx\n\n", speedup);

  // Regression guard at honest scale: the batched pipeline must never be
  // slower than the single-packet datapath on the same workload. (At CI's
  // tiny smoke scale batches degenerate to a handful of flows, so the
  // gate only arms at full scale.)
  int status = 0;
  if (benchx::bench_scale() >= 1.0 && speedup < 1.0) {
    std::printf("FAIL: batched datapath slower than single-packet "
                "(%.2fx)\n",
                speedup);
    status = 1;
  }

  report.throughput("throughput_single_packet_flows_per_sec",
                    single.flows_per_sec);
  report.throughput("throughput_single_packet_packets_per_sec",
                    single.packets_per_sec);
  report.throughput("throughput_batched_flows_per_sec",
                    batched.flows_per_sec);
  report.throughput("throughput_batched_packets_per_sec",
                    batched.packets_per_sec);
  report.metric("batched_speedup", speedup, "x");
  report.controller_load("controller_packet_ins",
                         static_cast<double>(batched.packet_ins));
  report.latency_ms("first_packet_latency_mean_ms", batched.first_packet_ms);
  report.memory_bytes("gfib_total_bytes",
                      static_cast<double>(batched.gfib_bytes));

  // --- micro kernels ---
  std::printf("hot-path kernels:\n");

  {
    BloomFilter f(BloomParameters{16384, 8});
    const double ins = ns_per_op(1 << 18, [&](std::size_t i) {
      f.insert(static_cast<std::uint64_t>(i));
      if ((i & 0x3FF) == 0) f.clear();  // keep fill ratio realistic
    });
    for (std::uint64_t k = 0; k < 24; ++k) f.insert(k * 977);
    const double qry = ns_per_op(1 << 19, [&](std::size_t i) {
      do_not_optimize(f.may_contain(static_cast<std::uint64_t>(i)));
    });
    std::printf("  %-34s %8.1f ns/op\n", "bloom insert", ins);
    std::printf("  %-34s %8.1f ns/op\n", "bloom query", qry);
    report.metric("bloom_insert_ns", ins, "ns");
    report.metric("bloom_query_ns", qry, "ns");
  }

  {
    // A paper-sized G-FIB (45 peer filters >= the 32-peer acceptance
    // floor, 24 hosts each), built under BOTH layouts from identical host
    // lists: the linear per-peer bank walks 45 filters per scan, the
    // bit-sliced bank ANDs k=8 peer-mask slices. Candidate sets are
    // bit-identical (tests/sliced_bank_test.cpp); only the memory walk
    // differs, which is exactly what this kernel times.
    core::GFib linear(BloomParameters{16384, 8}, core::GFibLayout::kLinear);
    core::GFib sliced(BloomParameters{16384, 8}, core::GFibLayout::kSliced);
    std::uint32_t host = 0;
    for (std::uint32_t peer = 1; peer <= 45; ++peer) {
      std::vector<MacAddress> macs;
      for (int h = 0; h < 24; ++h) {
        macs.push_back(MacAddress::for_host(host++));
      }
      linear.sync_peer(SwitchId{peer}, macs);
      sliced.sync_peer(SwitchId{peer}, macs);
    }
    std::vector<SwitchId> hits;
    hits.reserve(64);
    const double lin = ns_per_op(1 << 16, [&](std::size_t i) {
      hits.clear();
      linear.query_into(
          BloomHash::of(MacAddress::for_host(
              static_cast<std::uint32_t>(i % 2048))),
          hits);
      do_not_optimize(hits.size());
    });
    const double sli = ns_per_op(1 << 16, [&](std::size_t i) {
      hits.clear();
      sliced.query_into(
          BloomHash::of(MacAddress::for_host(
              static_cast<std::uint32_t>(i % 2048))),
          hits);
      do_not_optimize(hits.size());
    });
    const double scan_speedup = lin / sli;
    std::printf("  %-34s %8.1f ns/op\n", "g-fib scan (45 peers, linear)",
                lin);
    std::printf("  %-34s %8.1f ns/op\n", "g-fib scan (45 peers, sliced)",
                sli);
    std::printf("  %-34s %8.2fx\n", "g-fib sliced scan speedup",
                scan_speedup);
    if (scan_speedup < 1.5) {
      // Non-fatal: flags the regression in logs (and check_bench_json
      // repeats the warning from the committed JSON) without failing the
      // job — CI smoke boxes are too noisy for a hard perf gate.
      std::printf("WARNING: gfib_scan_speedup %.2fx < 1.5x "
                  "(non-fatal; sliced scan regressed?)\n",
                  scan_speedup);
    }
    report.metric("gfib_scan_ns", lin, "ns");
    report.metric("gfib_scan_sliced_ns", sli, "ns");
    report.metric("gfib_scan_speedup", scan_speedup, "x");
  }

  {
    core::LFib lfib;
    for (std::uint32_t h = 0; h < 24; ++h) {
      lfib.learn(MacAddress::for_host(h), HostId{h}, TenantId{0});
    }
    const double qry = ns_per_op(1 << 19, [&](std::size_t i) {
      do_not_optimize(lfib.contains(
          MacAddress::for_host(static_cast<std::uint32_t>(i % 48))));
    });
    std::printf("  %-34s %8.1f ns/op\n", "l-fib lookup (open addressing)",
                qry);
    report.metric("lfib_lookup_ns", qry, "ns");
  }

  {
    openflow::FlowTable table;
    for (std::uint32_t i = 0; i < 4096; ++i) {
      openflow::FlowRule r;
      r.priority = 10;
      r.match.tenant = TenantId{i % 16};
      r.match.dst_mac = MacAddress::for_host(i);
      r.action.type = openflow::ActionType::kEncapTo;
      table.install(r);
    }
    net::Packet p;
    p.tenant = TenantId{3};
    const double qry = ns_per_op(1 << 18, [&](std::size_t i) {
      p.dst_mac = MacAddress::for_host(static_cast<std::uint32_t>(i % 4096));
      do_not_optimize(table.lookup(p, 0));
    });
    std::printf("  %-34s %8.1f ns/op\n", "flow-table lookup (4096 rules)",
                qry);
    report.metric("flow_table_lookup_ns", qry, "ns");
  }

  {
    // Fig. 5 decision: local hosts + a 45-peer G-FIB, single vs batched.
    core::Config cfg;
    core::EdgeSwitch sw(SwitchId{0}, IpAddress::for_switch(0),
                        MacAddress{0x060000000000ULL}, cfg);
    std::uint32_t host = 0;
    for (int h = 0; h < 24; ++h) {
      sw.lfib().learn(MacAddress::for_host(host), HostId{host}, TenantId{0});
      ++host;
    }
    for (std::uint32_t peer = 1; peer <= 45; ++peer) {
      std::vector<MacAddress> macs;
      for (int h = 0; h < 24; ++h) {
        macs.push_back(MacAddress::for_host(host++));
      }
      sw.gfib().sync_peer(SwitchId{peer}, macs);
    }
    net::Packet p;
    p.tenant = TenantId{0};
    p.src_mac = MacAddress::for_host(0);
    const double single_ns = ns_per_op(1 << 16, [&](std::size_t i) {
      p.dst_mac = MacAddress::for_host(
          static_cast<std::uint32_t>(i % (46 * 24)));
      do_not_optimize(sw.decide(p, 0, core::ControlMode::kLazyCtrl));
    });

    constexpr std::size_t kBatch = 64;
    std::vector<net::Packet> batch(kBatch, p);
    core::EdgeSwitch::DecisionBatch decisions;
    std::uint32_t dst = 0;
    const double batched_ns =
        ns_per_op(1 << 10, [&](std::size_t) {
          for (auto& bp : batch) {
            bp.dst_mac = MacAddress::for_host(dst++ % (46 * 24));
          }
          decisions.clear();
          sw.decide_batch(batch, core::ControlMode::kLazyCtrl, decisions);
          do_not_optimize(decisions.size());
        }) /
        kBatch;
    std::printf("  %-34s %8.1f ns/op\n", "edge decide (single)", single_ns);
    std::printf("  %-34s %8.1f ns/op\n", "edge decide (batched pipeline)",
                batched_ns);
    report.metric("edge_decide_single_ns", single_ns, "ns");
    report.metric("edge_decide_batched_ns", batched_ns, "ns");
  }

  return status;
}

}  // namespace

int main() {
  benchx::HarnessOptions opts;
  opts.repetitions = 5;
  opts.warmup = 1;
  return benchx::run_benchmark(
      "micro_datapath",
      "Micro datapath — batched vs single-packet hot path",
      "records before (single-packet) and after (batched) replay medians "
      "on one workload; exits non-zero if batched regresses below "
      "single-packet at full scale. The >= 1.5x acceptance of the "
      "batched-datapath PR is vs the pre-PR build, measured back-to-back",
      opts, body);
}
