// Unified benchmark harness for the bench/ targets.
//
// Every bench binary wraps its body in run_benchmark(): the harness prints
// the banner, runs optional warmup iterations, repeats the body N times,
// aggregates every recorded metric to its median across repetitions, and
// emits a schema-versioned machine-readable BENCH_<name>.json next to the
// human-readable stdout. That JSON file is the perf trajectory record: CI
// validates it against the schema (validate_bench_json) and successive PRs
// can diff medians instead of scraping text tables.
//
// Environment knobs (all optional):
//   LAZYCTRL_BENCH_REPS      override the repetition count
//   LAZYCTRL_BENCH_WARMUP    override the warmup count
//   LAZYCTRL_BENCH_JSON_DIR  where BENCH_<name>.json lands (default ".")
//   LAZYCTRL_BENCH_SCALE     workload scale factor (see bench_common.h)
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace lazyctrl::benchx {

/// Version of the emitted JSON document layout. Bump when the set of
/// required top-level keys or the metric value shape changes.
inline constexpr int kBenchJsonSchemaVersion = 1;

/// One named measurement. Re-recording the same key on a later repetition
/// appends a sample; the JSON reports the median plus all samples.
class BenchReport {
 public:
  /// Records `value` (with a human unit like "flows/s", "ms", "bytes",
  /// "requests") for `key`. Keys are snake_case and stable across PRs —
  /// they are the time series CI tracks.
  void metric(const std::string& key, double value, const std::string& unit);

  /// Convenience for the standard metric families the schema calls out.
  void throughput(const std::string& key, double per_sec) {
    metric(key, per_sec, "per_s");
  }
  void latency_ms(const std::string& key, double ms) {
    metric(key, ms, "ms");
  }
  void controller_load(const std::string& key, double requests) {
    metric(key, requests, "requests");
  }
  void memory_bytes(const std::string& key, double bytes) {
    metric(key, bytes, "bytes");
  }

  struct Metric {
    std::string unit;
    std::vector<double> samples;  ///< one per repetition that recorded it
  };
  [[nodiscard]] const std::map<std::string, Metric>& metrics() const {
    return metrics_;
  }

  /// Records a flat point-in-time stat (an obs::Registry sample, typically
  /// recorded once on the final repetition). Unlike metric(), re-recording
  /// a key overwrites: stats are state snapshots, not per-rep samples to
  /// aggregate. Rendered as the flat "stats" JSON section.
  void stat(const std::string& key, double value);
  [[nodiscard]] const std::map<std::string, double>& stats() const {
    return stats_;
  }

 private:
  std::map<std::string, Metric> metrics_;
  std::map<std::string, double> stats_;
};

struct HarnessOptions {
  /// Measured repetitions; the JSON reports per-metric medians across them.
  /// Heavy figure reproductions default to 1; microbenches ask for more.
  int repetitions = 1;
  /// Discarded warmup runs of the body before measuring.
  int warmup = 0;
};

/// Runs `body` under the harness (see file comment) and returns the exit
/// code for main(): the worst body status across repetitions, or 64+ for
/// harness-level failures (unwritable JSON). `name` must be the bench
/// binary suffix (e.g. "fig7_controller_workload" for
/// bench_fig7_controller_workload) — it names BENCH_<name>.json.
int run_benchmark(const std::string& name, const std::string& title,
                  const std::string& paper_reference, HarnessOptions options,
                  const std::function<int(BenchReport&)>& body);

/// Lowercases `text` and collapses every non-alphanumeric run into a
/// single '_' (trimmed at both ends): "Syn-A, tight memory" ->
/// "syn_a_tight_memory". For deriving stable metric keys from labels.
std::string slugify(const std::string& text);

/// Validates a BENCH_*.json document against schema version 1: structurally
/// well-formed JSON plus the required keys and types. On failure returns
/// false and, when `error` is non-null, stores a human-readable reason.
bool validate_bench_json(const std::string& json_text, std::string* error);

/// Minimal JSON DOM + parser shared by the schema validators
/// (validate_bench_json here, check_bench_json and check_trace_json in
/// CI). Deliberately small: structural validity plus typed value access,
/// no external dependency. \\uXXXX escapes are checked for shape but
/// decoded as '?'.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind =
      Kind::kNull;
  double number = 0.0;
  bool boolean = false;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Parses `text` into `*out`. On failure returns false and, when `error`
/// is non-null, stores a reason with the byte offset.
bool parse_json(const std::string& text, JsonValue* out, std::string* error);

/// Serialises one report the way run_benchmark() writes it (exposed for
/// tests, which validate the round trip against validate_bench_json).
std::string render_bench_json(const std::string& name,
                              const std::string& title,
                              const std::string& paper_reference,
                              int repetitions, int warmup,
                              double wall_seconds_median, int exit_status,
                              const BenchReport& report);

}  // namespace lazyctrl::benchx
