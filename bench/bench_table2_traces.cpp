// Reproduces Table II: characteristics of the four traffic traces.
//
//   Trace   #flows   avg.centrality   p(%)   q(%)
//   Real    271M     0.85             -      -
//   Syn-A   2720M    0.85             90     10
//   Syn-B   3806M    0.72             70     20
//   Syn-C   5071M    0.61             70     30
//
// Flow counts are scaled by bench_common's divisor; centrality is measured
// on the generated trace with the paper's 5-way host partition.
#include <cstdio>

#include "bench_common.h"
#include "harness.h"
#include "workload/stats.h"

using namespace lazyctrl;

namespace {

void report_trace(benchx::BenchReport& out, const char* name,
                  const workload::Trace& trace, const topo::Topology& topo,
                  double paper_centrality, double p, double q) {
  const workload::TraceStats s = workload::compute_stats(trace, topo, 5);
  std::printf("%-6s %10zu %12.0fM %12.3f %10.2f", name, trace.flow_count(),
              static_cast<double>(trace.flow_count()) *
                  benchx::kFlowScaleDivisor / benchx::bench_scale() / 1e6,
              s.avg_centrality, paper_centrality);
  if (p > 0) {
    std::printf(" %6.0f %6.0f", p, q);
  } else {
    std::printf("    N/A    N/A");
  }
  std::printf("   (top-10%% pair share: %.2f, intra-group: %.2f)\n",
              s.top10_pair_flow_share, s.intra_group_flow_fraction);
  const std::string slug = benchx::slugify(name);
  out.metric("centrality_" + slug, s.avg_centrality, "centrality");
  out.metric("flows_" + slug, static_cast<double>(trace.flow_count()),
             "flows");
}

int body(benchx::BenchReport& report) {
  std::printf("%-6s %10s %13s %12s %10s %6s %6s\n", "trace", "flows",
              "(paper-scale)", "centrality", "(paper)", "p%", "q%");

  {
    const topo::Topology topo = benchx::real_topology();
    const workload::Trace real = benchx::real_trace(topo);
    report_trace(report, "Real", real, topo, 0.85, -1, -1);
  }
  {
    const topo::Topology topo = benchx::synthetic_topology();
    std::printf("(synthetic topology: %zu switches, %zu hosts)\n",
                topo.switch_count(), topo.host_count());
    report_trace(report, "Syn-A",
                 benchx::synthetic_trace(topo, 90, 10, 2720, 501), topo,
                 0.85, 90, 10);
    report_trace(report, "Syn-B",
                 benchx::synthetic_trace(topo, 70, 20, 3806, 502), topo,
                 0.72, 70, 20);
    report_trace(report, "Syn-C",
                 benchx::synthetic_trace(topo, 70, 30, 5071, 503), topo,
                 0.61, 70, 30);
  }
  return 0;
}

}  // namespace

int main() {
  return benchx::run_benchmark(
      "table2_traces", "Table II — Characteristics of the traffic traces",
      "Real 271M flows c=0.85; Syn-A/B/C with (p,q) = "
      "(90,10)/(70,20)/(70,30), c = 0.85/0.72/0.61",
      {}, body);
}
