#include "harness.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "bench_common.h"

namespace lazyctrl::benchx {

namespace {

int env_int(const char* name, int fallback) {
  if (const char* s = std::getenv(name)) {
    const int v = std::atoi(s);
    if (v >= 0) return v;
  }
  return fallback;
}

std::string json_dir() {
  if (const char* s = std::getenv("LAZYCTRL_BENCH_JSON_DIR")) {
    if (*s != '\0') return s;
  }
  return ".";
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  return v.size() % 2 ? v[mid] : (v[mid - 1] + v[mid]) / 2.0;
}

double finite_or_zero(double x) { return std::isfinite(x) ? x : 0.0; }

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double x) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", finite_or_zero(x));
  out += buf;
}

// ---- minimal JSON reader behind benchx::parse_json ----
//
// A deliberately small recursive-descent parser: enough to check structural
// validity and to extract the typed values the schema validators require
// (validate_bench_json here, check_bench_json / check_trace_json in CI).

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(JsonValue* out, std::string* error) {
    skip_ws();
    if (!parse_value(out)) {
      if (error) *error = error_;
      return false;
    }
    skip_ws();
    if (pos_ != s_.size()) {
      if (error) *error = "trailing characters after document";
      return false;
    }
    return true;
  }

 private:
  bool fail(const std::string& why) {
    std::ostringstream os;
    os << why << " at offset " << pos_;
    error_ = os.str();
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool parse_value(JsonValue* out) {
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    switch (s_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return parse_string(&out->string);
      case 't':
      case 'f': return parse_bool(out);
      case 'n': return parse_null(out);
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= s_.size() || s_[pos_] != '"') return fail("expected key");
      if (!parse_string(&key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated object");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->array.push_back(std::move(value));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated array");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= s_.size()) return fail("bad escape");
        const char e = s_[pos_ + 1];
        pos_ += 2;
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u':
            if (pos_ + 4 > s_.size()) return fail("bad \\u escape");
            // Validation only needs structural correctness; keep the raw
            // escape digits rather than decoding to UTF-8.
            pos_ += 4;
            *out += '?';
            break;
          default: return fail("bad escape");
        }
        continue;
      }
      *out += c;
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool parse_bool(JsonValue* out) {
    out->kind = JsonValue::Kind::kBool;
    if (s_.compare(pos_, 4, "true") == 0) {
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      out->boolean = false;
      pos_ += 5;
      return true;
    }
    return fail("bad literal");
  }

  bool parse_null(JsonValue* out) {
    out->kind = JsonValue::Kind::kNull;
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    return fail("bad literal");
  }

  bool parse_number(JsonValue* out) {
    out->kind = JsonValue::Kind::kNumber;
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(s_[pos_]))) digits = true;
      ++pos_;
    }
    if (!digits) return fail("bad number");
    out->number = std::strtod(s_.c_str() + start, nullptr);
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string error_;
};

bool require(bool cond, const std::string& why, std::string* error) {
  if (!cond && error) *error = why;
  return cond;
}

}  // namespace

bool parse_json(const std::string& text, JsonValue* out, std::string* error) {
  JsonParser parser(text);
  return parser.parse(out, error);
}

std::string slugify(const std::string& text) {
  std::string out;
  bool pending_sep = false;
  for (const char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      if (pending_sep && !out.empty()) out += '_';
      pending_sep = false;
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else {
      pending_sep = true;
    }
  }
  return out;
}

void BenchReport::metric(const std::string& key, double value,
                         const std::string& unit) {
  Metric& m = metrics_[key];
  if (m.unit.empty()) m.unit = unit;
  m.samples.push_back(finite_or_zero(value));
}

void BenchReport::stat(const std::string& key, double value) {
  stats_[key] = finite_or_zero(value);
}

std::string render_bench_json(const std::string& name,
                              const std::string& title,
                              const std::string& paper_reference,
                              int repetitions, int warmup,
                              double wall_seconds_median, int exit_status,
                              const BenchReport& report) {
  std::string out;
  out += "{\n";
  out += "  \"schema_version\": ";
  out += std::to_string(kBenchJsonSchemaVersion);
  out += ",\n  \"name\": ";
  append_escaped(out, name);
  out += ",\n  \"title\": ";
  append_escaped(out, title);
  out += ",\n  \"paper_reference\": ";
  append_escaped(out, paper_reference);
  out += ",\n  \"flow_scale_divisor\": ";
  append_number(out, kFlowScaleDivisor);
  out += ",\n  \"bench_scale\": ";
  append_number(out, bench_scale());
  out += ",\n  \"repetitions\": ";
  out += std::to_string(repetitions);
  out += ",\n  \"warmup\": ";
  out += std::to_string(warmup);
  out += ",\n  \"wall_seconds_median\": ";
  append_number(out, wall_seconds_median);
  out += ",\n  \"exit_status\": ";
  out += std::to_string(exit_status);
  out += ",\n  \"metrics\": {";
  bool first = true;
  for (const auto& [key, m] : report.metrics()) {
    if (!first) out += ",";
    first = false;
    out += "\n    ";
    append_escaped(out, key);
    out += ": {\"value\": ";
    append_number(out, median(m.samples));
    out += ", \"unit\": ";
    append_escaped(out, m.unit);
    out += ", \"samples\": [";
    for (std::size_t i = 0; i < m.samples.size(); ++i) {
      if (i) out += ", ";
      append_number(out, m.samples[i]);
    }
    out += "]}";
  }
  out += first ? "}" : "\n  }";
  if (!report.stats().empty()) {
    // Flat stats section (obs::Registry snapshot): key -> number.
    out += ",\n  \"stats\": {";
    bool first_stat = true;
    for (const auto& [key, value] : report.stats()) {
      if (!first_stat) out += ",";
      first_stat = false;
      out += "\n    ";
      append_escaped(out, key);
      out += ": ";
      append_number(out, value);
    }
    out += "\n  }";
  }
  out += "\n}\n";
  return out;
}

int run_benchmark(const std::string& name, const std::string& title,
                  const std::string& paper_reference, HarnessOptions options,
                  const std::function<int(BenchReport&)>& body) {
  const int reps =
      std::max(1, env_int("LAZYCTRL_BENCH_REPS", options.repetitions));
  const int warmup = env_int("LAZYCTRL_BENCH_WARMUP", options.warmup);

  print_header(title, paper_reference);
  std::printf("harness: %d warmup + %d measured repetition(s); JSON -> "
              "%s/BENCH_%s.json\n\n",
              warmup, reps, json_dir().c_str(), name.c_str());

  for (int w = 0; w < warmup; ++w) {
    BenchReport discard;
    (void)body(discard);
  }

  BenchReport report;
  std::vector<double> wall;
  int status = 0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    status = std::max(status, body(report));
    wall.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  }

  const std::string path = json_dir() + "/BENCH_" + name + ".json";
  const std::string doc = render_bench_json(
      name, title, paper_reference, reps, warmup, median(wall), status,
      report);
  {
    std::ofstream f(path, std::ios::trunc);
    f << doc;
    if (!f) {
      std::fprintf(stderr, "harness: cannot write %s\n", path.c_str());
      return 64;
    }
  }
  std::string error;
  if (!validate_bench_json(doc, &error)) {
    std::fprintf(stderr, "harness: emitted JSON fails its own schema: %s\n",
                 error.c_str());
    return 65;
  }
  std::printf("\n[harness] wall median %.3fs over %d rep(s); wrote %s\n",
              median(wall), reps, path.c_str());
  return status;
}

bool validate_bench_json(const std::string& json_text, std::string* error) {
  JsonValue root;
  if (!parse_json(json_text, &root, error)) return false;
  if (!require(root.kind == JsonValue::Kind::kObject, "root is not an object",
               error)) {
    return false;
  }

  const auto string_field = [&](const char* key) {
    const JsonValue* v = root.find(key);
    return v != nullptr && v->kind == JsonValue::Kind::kString;
  };
  const auto number_field = [&](const char* key) {
    const JsonValue* v = root.find(key);
    return v != nullptr && v->kind == JsonValue::Kind::kNumber;
  };

  const JsonValue* version = root.find("schema_version");
  if (!require(version != nullptr &&
                   version->kind == JsonValue::Kind::kNumber &&
                   version->number == kBenchJsonSchemaVersion,
               "schema_version missing or not the supported version",
               error)) {
    return false;
  }
  for (const char* key : {"name", "title", "paper_reference"}) {
    if (!require(string_field(key),
                 std::string(key) + " missing or not a string", error)) {
      return false;
    }
  }
  for (const char* key : {"flow_scale_divisor", "bench_scale", "repetitions",
                          "warmup", "wall_seconds_median", "exit_status"}) {
    if (!require(number_field(key),
                 std::string(key) + " missing or not a number", error)) {
      return false;
    }
  }
  if (!require(root.find("repetitions")->number >= 1, "repetitions < 1",
               error)) {
    return false;
  }

  const JsonValue* metrics = root.find("metrics");
  if (!require(metrics != nullptr &&
                   metrics->kind == JsonValue::Kind::kObject,
               "metrics missing or not an object", error)) {
    return false;
  }
  for (const auto& [key, m] : metrics->object) {
    if (!require(m.kind == JsonValue::Kind::kObject,
                 "metric " + key + " is not an object", error)) {
      return false;
    }
    const JsonValue* value = m.find("value");
    const JsonValue* unit = m.find("unit");
    const JsonValue* samples = m.find("samples");
    if (!require(value != nullptr && value->kind == JsonValue::Kind::kNumber,
                 "metric " + key + " lacks a numeric value", error)) {
      return false;
    }
    if (!require(unit != nullptr && unit->kind == JsonValue::Kind::kString,
                 "metric " + key + " lacks a string unit", error)) {
      return false;
    }
    if (!require(samples != nullptr &&
                     samples->kind == JsonValue::Kind::kArray &&
                     !samples->array.empty(),
                 "metric " + key + " lacks a non-empty samples array",
                 error)) {
      return false;
    }
    for (const JsonValue& s : samples->array) {
      if (!require(s.kind == JsonValue::Kind::kNumber,
                   "metric " + key + " has a non-numeric sample", error)) {
        return false;
      }
    }
  }

  // Optional flat stats section (obs::Registry snapshots).
  if (const JsonValue* stats = root.find("stats")) {
    if (!require(stats->kind == JsonValue::Kind::kObject,
                 "stats is not an object", error)) {
      return false;
    }
    for (const auto& [key, v] : stats->object) {
      if (!require(v.kind == JsonValue::Kind::kNumber,
                   "stat " + key + " is not a number", error)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace lazyctrl::benchx
