// Reproduces Fig. 6(b): computation time of switch grouping (IniGroup)
// under different group size limits, plus the paper's claim that IncUpdate
// is more than an order of magnitude faster than IniGroup.
//
// Paper shape: grouping completes in < 5 s and the time is inversely
// related to the group size limit.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/sgi.h"
#include "harness.h"
#include "workload/intensity.h"

using namespace lazyctrl;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

int body(benchx::BenchReport& report) {
  const topo::Topology topo = benchx::synthetic_topology();
  std::printf("topology: %zu switches, %zu hosts\n\n", topo.switch_count(),
              topo.host_count());

  struct TraceCase {
    const char* name;
    graph::WeightedGraph intensity;
  };
  std::vector<TraceCase> cases;
  {
    const auto ta = benchx::synthetic_trace(topo, 90, 10, 2720, 501);
    const auto tb = benchx::synthetic_trace(topo, 70, 20, 3806, 502);
    const auto tc = benchx::synthetic_trace(topo, 70, 30, 5071, 503);
    cases.push_back({"Syn-A", workload::build_intensity_graph(ta, topo)});
    cases.push_back({"Syn-B", workload::build_intensity_graph(tb, topo)});
    cases.push_back({"Syn-C", workload::build_intensity_graph(tc, topo)});
  }

  const std::vector<std::size_t> limits = {50, 100, 200, 300, 400, 500, 600};

  std::printf("%-8s", "limit");
  for (std::size_t l : limits) std::printf("%9zu", l);
  std::printf("\n");

  double inigroup_at_200 = 0;
  for (const TraceCase& c : cases) {
    std::printf("%-8s", c.name);
    for (std::size_t limit : limits) {
      core::Sgi sgi(core::SgiOptions{.group_size_limit = limit});
      Rng rng(limit);
      const auto t0 = std::chrono::steady_clock::now();
      const core::Grouping g = sgi.initial_grouping(c.intensity, rng);
      const double dt = seconds_since(t0);
      if (limit == 200) {
        inigroup_at_200 = dt;
        report.metric("inigroup_seconds_" + std::string(c.name) + "_limit200",
                      dt, "s");
      }
      std::printf("%8.3fs", dt);
      (void)g;
    }
    std::printf("\n");
  }

  // IncUpdate speed on the last trace at limit 200.
  {
    core::Sgi sgi(core::SgiOptions{.group_size_limit = 200,
                                   .max_iterations = 1});
    Rng rng(99);
    core::Grouping g = sgi.initial_grouping(cases.back().intensity, rng);
    const auto t0 = std::chrono::steady_clock::now();
    sgi.incremental_update(g, cases.back().intensity, rng);
    const double inc = seconds_since(t0);
    std::printf("\nIncUpdate (1 merge/split, limit 200): %.3fs vs IniGroup "
                "%.3fs -> %.1fx faster (paper: >10x)\n",
                inc, inigroup_at_200,
                inc > 0 ? inigroup_at_200 / inc : 0.0);
    report.metric("incupdate_seconds_limit200", inc, "s");
    report.metric("incupdate_speedup_vs_inigroup",
                  inc > 0 ? inigroup_at_200 / inc : 0.0, "x");
  }
  std::printf("Paper: all IniGroup times < 5 s, decreasing as the limit "
              "grows.\n");
  return 0;
}

}  // namespace

int main() {
  return benchx::run_benchmark(
      "fig6b_grouping_time",
      "Fig. 6(b) — Switch grouping computation time vs group size limit",
      "IniGroup < 5 s, inversely related to the limit; IncUpdate >= 10x "
      "faster than IniGroup",
      {}, body);
}
