// Sharded parallel replay scaling (src/runtime extension).
//
// Replays one heavy-load burst workload — a dense minute of traffic, the
// "millions of users" regime where event density is what caps replay —
// through:
//
//   * baseline       — single-threaded batched Network::replay (1 shard);
//   * deterministic  — ShardedRuntime kDeterministic at 8 shards, which
//     must be BIT-IDENTICAL to the baseline (checked here, exit 1 on any
//     divergence — this gate is core-count-independent);
//   * fast           — ShardedRuntime kFast at 2/4/8 shards, the
//     throughput mode with bounded-lag (one sync window) relaxation.
//
// The wall-clock ≥3x acceptance gate for fast@8 arms only when the
// machine actually has >= 8 hardware threads AND the run is at full scale
// (same pattern as bench_micro_datapath's full-scale-only gate): parallel
// speedup is not measurable on fewer cores, and the committed JSON records
// `cpu_cores` precisely so readers can interpret the medians. Setup
// (topology, trace, history, bootstrap) happens outside every timed
// region; each timed region covers exactly one replay.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "bench_common.h"
#include "core/network.h"
#include "harness.h"
#include "runtime/sharded_runtime.h"
#include "workload/intensity.h"

using namespace lazyctrl;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Setup {
  topo::Topology topo;
  workload::Trace trace;
  graph::WeightedGraph history;

  Setup()
      : topo(make_topo()),
        trace(make_trace(topo)),
        history(workload::build_intensity_graph(trace, topo, 0,
                                                30 * kSecond)) {}

  static topo::Topology make_topo() {
    Rng rng(911);
    topo::MultiTenantOptions opt;
    opt.switch_count = 96;
    opt.tenant_count = 40;
    opt.min_vms_per_tenant = 20;
    opt.max_vms_per_tenant = 60;
    opt.vms_per_switch = 24;
    return topo::build_multi_tenant(opt, rng);
  }
  static workload::Trace make_trace(const topo::Topology& topo) {
    Rng rng(912);
    workload::RealLikeOptions opt;
    // A dense 60-second burst: ~33k new flows per simulated second at
    // full scale, so a 200 ms sync window carries thousands of flows and
    // barrier cost amortizes away.
    opt.total_flows =
        static_cast<std::size_t>(2e6 * benchx::bench_scale());
    opt.horizon = 60 * kSecond;
    opt.profile = workload::DiurnalProfile::flat();
    return workload::generate_real_like(topo, opt, rng);
  }
};

core::Config scaling_config(std::size_t shards, core::RuntimeMode mode) {
  core::Config cfg;
  cfg.mode = core::ControlMode::kLazyCtrl;
  // 96 switches / limit 12 -> 8 groups, so 8 shards are actually usable.
  cfg.grouping.group_size_limit = 12;
  cfg.runtime.num_shards = shards;
  cfg.runtime.mode = mode;
  cfg.runtime.sync_window = 200 * kMillisecond;
  return cfg;
}

struct RunResult {
  double seconds = 0;
  double flows_per_sec = 0;
  core::RunMetrics metrics{60 * kSecond};
  runtime::ShardedRuntime::Stats stats;
  std::size_t shard_count = 1;
};

RunResult run_one(const Setup& s, std::size_t shards,
                  core::RuntimeMode mode) {
  core::Network net(s.topo, scaling_config(shards, mode));
  net.bootstrap(s.history);  // untimed

  RunResult r;
  if (shards <= 1) {
    const auto t0 = std::chrono::steady_clock::now();
    net.replay(s.trace);
    r.seconds = seconds_since(t0);
  } else {
    runtime::ShardedRuntime sharded(net);
    const auto t0 = std::chrono::steady_clock::now();
    sharded.replay(s.trace);
    r.seconds = seconds_since(t0);
    r.stats = sharded.stats();
    r.shard_count = sharded.shard_count();
  }
  r.flows_per_sec =
      static_cast<double>(net.metrics().flows_seen) / r.seconds;
  r.metrics = net.metrics();
  return r;
}

int body(benchx::BenchReport& report) {
  static const Setup setup;  // built once, outside every timed region
  const unsigned cores = std::thread::hardware_concurrency();

  std::printf("parallel replay scaling (%zu flows, %zu switches, %u cores)\n",
              setup.trace.flow_count(), setup.topo.switch_count(), cores);

  const RunResult baseline =
      run_one(setup, 1, core::RuntimeMode::kDeterministic);
  std::printf("  %-26s %9.3fs %12.0f flows/s\n", "baseline (1 thread)",
              baseline.seconds, baseline.flows_per_sec);

  int status = 0;

  // --- deterministic mode: the bit-identity acceptance gate (always on,
  // core-count-independent) ---
  const RunResult det = run_one(setup, 8, core::RuntimeMode::kDeterministic);
  // One canonical comparator (RunMetrics::identical_to) covers EVERY
  // field — counters, all time-series buckets, all latency moments.
  const bool identical = baseline.metrics.identical_to(det.metrics);
  std::printf("  %-26s %9.3fs %12.0f flows/s  (%zu shards, %llu spans, "
              "bit-identical: %s)\n",
              "deterministic @8", det.seconds, det.flows_per_sec,
              det.shard_count,
              static_cast<unsigned long long>(det.stats.spans),
              identical ? "yes" : "NO");
  if (!identical) {
    std::printf("FAIL: deterministic sharded metrics diverged from the "
                "single-threaded replay\n");
    status = 1;
  }

  // --- fast mode scaling ---
  double fast8_flows_per_sec = 0;
  for (const std::size_t shards : {2u, 4u, 8u}) {
    const RunResult fast = run_one(setup, shards, core::RuntimeMode::kFast);
    const double speedup = baseline.seconds / fast.seconds;
    std::printf("  %-26s %9.3fs %12.0f flows/s  (%.2fx, %llu deferred)\n",
                ("fast @" + std::to_string(shards)).c_str(), fast.seconds,
                fast.flows_per_sec, speedup,
                static_cast<unsigned long long>(fast.stats.deferred_flows));
    report.throughput("throughput_fast_" + std::to_string(shards) +
                          "shard_flows_per_sec",
                      fast.flows_per_sec);
    report.metric("speedup_fast_" + std::to_string(shards) + "shard",
                  speedup, "x");
    if (shards == 8) fast8_flows_per_sec = fast.flows_per_sec;
  }

  const double speedup8 = fast8_flows_per_sec / baseline.flows_per_sec;
  // The >= 3x wall-clock gate needs >= 8 hardware threads and full scale
  // to be meaningful; otherwise the medians are recorded but not gated.
  if (benchx::bench_scale() >= 1.0 && cores >= 8 && speedup8 < 3.0) {
    std::printf("FAIL: fast mode at 8 shards reached only %.2fx over the "
                "1-shard baseline (>= 3x required on >= 8 cores)\n",
                speedup8);
    status = 1;
  } else if (cores < 8) {
    std::printf("  note: %u hardware thread(s) — the >= 3x gate is not "
                "armed (needs >= 8 cores); wall-clock scaling cannot "
                "manifest here\n",
                cores);
  }

  report.throughput("throughput_baseline_flows_per_sec",
                    baseline.flows_per_sec);
  report.throughput("throughput_deterministic_8shard_flows_per_sec",
                    det.flows_per_sec);
  report.metric("speedup_deterministic_8shard",
                baseline.seconds / det.seconds, "x");
  report.metric("deterministic_bit_identical", identical ? 1.0 : 0.0,
                "bool");
  report.metric("cpu_cores", static_cast<double>(cores), "cores");
  report.metric("sync_window_ms", 200.0, "ms");
  report.controller_load(
      "controller_packet_ins_baseline",
      static_cast<double>(baseline.metrics.controller_packet_ins));
  return status;
}

}  // namespace

int main() {
  benchx::HarnessOptions opts;
  opts.repetitions = 3;
  opts.warmup = 1;
  return benchx::run_benchmark(
      "parallel_scaling",
      "Sharded parallel replay — deterministic fidelity + fast-mode scaling",
      "repo extension (src/runtime): group-sharded replay with bounded-lag "
      "synchronization; deterministic mode must be bit-identical to "
      "single-threaded replay (gated here), fast mode targets >= 3x at 8 "
      "shards over the 1-shard baseline on >= 8 cores",
      opts, body);
}
