// Reproduces the §II-A motivation measurements on the real-like trace:
//
//  * 6509 hosts; only 11,602 of >20 million possible host pairs exchanged
//    traffic;
//  * over 90% of flows contributed by ~10% of the communicating pairs;
//  * an even 5-way partition leaves < 9.8% of traffic inter-group;
//  * average group centrality 0.853.
#include <cstdio>

#include "bench_common.h"
#include "harness.h"
#include "workload/analyzer.h"
#include "workload/stats.h"

using namespace lazyctrl;

namespace {

int body(benchx::BenchReport& report) {
  const topo::Topology topo = benchx::real_topology();
  const workload::Trace trace = benchx::real_trace(topo);
  const workload::TraceStats stats = workload::compute_stats(trace, topo, 5);
  const workload::TraceProfile profile = workload::analyze(trace, topo);

  const double possible_pairs =
      static_cast<double>(topo.host_count()) *
      static_cast<double>(topo.host_count() - 1) / 2.0;

  std::printf("%-44s %14s %14s\n", "quantity", "measured", "paper");
  std::printf("%-44s %14zu %14d\n", "hosts", topo.host_count(), 6509);
  std::printf("%-44s %13.1fM %14s\n", "possible host pairs",
              possible_pairs / 1e6, ">20M");
  std::printf("%-44s %14zu %14d\n", "pairs that exchanged traffic",
              stats.distinct_pairs, 11602);
  std::printf("%-44s %13.1f%% %14s\n", "flows from busiest 10% of pairs",
              100.0 * stats.top10_pair_flow_share, ">90%");
  std::printf("%-44s %13.1f%% %14s\n", "inter-group traffic (5-way split)",
              100.0 * (1.0 - stats.intra_group_flow_fraction), "<9.8%");
  std::printf("%-44s %14.3f %14.3f\n", "average group centrality",
              stats.avg_centrality, 0.853);
  std::printf("%-44s %13.1f%% %14s\n", "intra-tenant flow share",
              100.0 * profile.intra_tenant_flow_share,
              "(tenant isolation)");
  std::printf("%-44s %14zu %14s\n", "shared-service hubs detected",
              profile.hubs.size(), "n/a");

  std::printf("\nNote: our communicating-pair count exceeds the paper's "
              "11.6k because each of ~6.5k hosts gets ~3 partners plus "
              "cross-tenant/hub pairs; the locality and skew statistics "
              "are what LazyCtrl exploits and what the generator is "
              "calibrated to.\n");
  report.metric("distinct_pairs", static_cast<double>(stats.distinct_pairs),
                "pairs");
  report.metric("top10_pair_flow_share", stats.top10_pair_flow_share,
                "fraction");
  report.metric("inter_group_fraction_5way",
                1.0 - stats.intra_group_flow_fraction, "fraction");
  report.metric("avg_centrality", stats.avg_centrality, "centrality");
  return 0;
}

}  // namespace

int main() {
  return benchx::run_benchmark(
      "section2_motivation",
      "§II-A — traffic locality measurements on the (stand-in) real trace",
      "6509 hosts, 11,602 communicating pairs of >20M, top-10% pairs -> "
      ">90% of flows, <9.8% inter-group, centrality 0.853",
      {}, body);
}
