// Reproduces §V-E "cold-cache forwarding latency": first packets of 45
// fresh flows among 5 newly deployed hosts.
//
// Paper: LazyCtrl intra-group 0.83 ms (>10x better than OpenFlow 15.06 ms);
// LazyCtrl inter-group 5.38 ms. The reproduced shape is the ordering and
// the order-of-magnitude gap between intra-group and OpenFlow.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/stats.h"
#include "core/network.h"
#include "harness.h"
#include "workload/intensity.h"

using namespace lazyctrl;

namespace {

int body(benchx::BenchReport& report) {
  const topo::Topology topo = benchx::real_topology();
  const workload::Trace trace = benchx::real_trace(topo);
  const auto history = workload::build_intensity_graph(trace, topo, 0, kHour);

  core::Config lazy_cfg;
  lazy_cfg.mode = core::ControlMode::kLazyCtrl;
  lazy_cfg.grouping.group_size_limit = 46;

  // --- LazyCtrl: intra-group placements ---
  RunningStats intra_ms, inter_ms, of_ms;
  {
    core::Network net(topo, lazy_cfg);
    net.bootstrap(history);
    const auto members = net.grouping().members();
    const auto& g0 = members.at(0);

    // 5 new hosts on distinct switches of the same group; 45 flows = all
    // ordered pairs (20) plus repeats of fresh destinations.
    std::vector<HostId> hosts;
    for (std::size_t i = 0; i < 5; ++i) {
      hosts.push_back(net.add_silent_host(TenantId{0},
                                          g0.at(i % g0.size())));
    }
    int flows = 0;
    for (int round = 0; round < 3 && flows < 45; ++round) {
      // Each round deploys a fresh replacement set to keep caches cold.
      for (std::size_t i = 0; i < hosts.size() && flows < 45; ++i) {
        for (std::size_t j = 0; j < hosts.size() && flows < 45; ++j) {
          if (i == j) continue;
          intra_ms.add(to_milliseconds(
              net.cold_cache_first_packet(hosts[i], hosts[j])));
          ++flows;
        }
      }
      std::vector<HostId> next;
      for (std::size_t i = 0; i < 5; ++i) {
        next.push_back(net.add_silent_host(TenantId{0},
                                           g0.at((i + round) % g0.size())));
      }
      hosts = next;
    }
  }

  // --- LazyCtrl: inter-group placements ---
  {
    core::Network net(topo, lazy_cfg);
    net.bootstrap(history);
    const auto members = net.grouping().members();
    const auto& ga = members.at(0);
    const auto& gb = members.at(1 % members.size());
    int flows = 0;
    while (flows < 45) {
      const HostId a = net.add_silent_host(TenantId{0},
                                           ga.at(flows % ga.size()));
      const HostId b = net.add_silent_host(TenantId{0},
                                           gb.at(flows % gb.size()));
      inter_ms.add(to_milliseconds(net.cold_cache_first_packet(a, b)));
      ++flows;
    }
  }

  // --- OpenFlow baseline: 45 flows = all unordered pairs of 10 new hosts
  // (the controller passively learns locations from the ARP exchanges, so
  // later flows only pay the flow-setup round trip). ---
  {
    core::Config cfg;
    cfg.mode = core::ControlMode::kOpenFlow;
    core::Network net(topo, cfg);
    net.bootstrap();
    std::vector<HostId> hosts;
    for (std::uint32_t i = 0; i < 10; ++i) {
      hosts.push_back(net.add_silent_host(
          TenantId{0}, SwitchId{static_cast<std::uint32_t>((i * 27) % 272)}));
    }
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      for (std::size_t j = i + 1; j < hosts.size(); ++j) {
        of_ms.add(to_milliseconds(
            net.cold_cache_first_packet(hosts[i], hosts[j])));
      }
    }
  }

  std::printf("%-28s %12s %12s\n", "scenario", "measured", "paper");
  std::printf("%-28s %9.3f ms %9.2f ms\n", "LazyCtrl intra-group",
              intra_ms.mean(), 0.83);
  std::printf("%-28s %9.3f ms %9.2f ms\n", "LazyCtrl inter-group",
              inter_ms.mean(), 5.38);
  std::printf("%-28s %9.3f ms %9.2f ms\n", "standard OpenFlow", of_ms.mean(),
              15.06);
  std::printf("\nordering intra < inter < OpenFlow: %s\n",
              (intra_ms.mean() < inter_ms.mean() &&
               inter_ms.mean() < of_ms.mean())
                  ? "reproduced"
                  : "NOT reproduced");
  std::printf("OpenFlow / intra-group ratio: %.1fx (paper: ~18x; >10x = "
              "order-of-magnitude claim)\n",
              of_ms.mean() / intra_ms.mean());
  report.latency_ms("cold_cache_intra_group_ms", intra_ms.mean());
  report.latency_ms("cold_cache_inter_group_ms", inter_ms.mean());
  report.latency_ms("cold_cache_openflow_ms", of_ms.mean());
  report.metric("openflow_over_intra_ratio",
                of_ms.mean() / intra_ms.mean(), "x");
  return 0;
}

}  // namespace

int main() {
  return benchx::run_benchmark(
      "cold_cache_latency",
      "§V-E — Cold-cache forwarding latency (45 fresh flows, 5 new hosts)",
      "LazyCtrl intra 0.83 ms, inter 5.38 ms, OpenFlow 15.06 ms", {}, body);
}
