// Reproduces Fig. 6(a): normalized inter-group traffic intensity (Winter)
// as a function of the number of groups, for Syn-A/B/C.
//
// Paper shape: Winter grows roughly linearly with the group count (5%-50%
// over 5-140 groups) and is lower for traces with higher centrality
// (Syn-A < Syn-B < Syn-C).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/sgi.h"
#include "graph/multilevel_partitioner.h"
#include "harness.h"
#include "workload/intensity.h"

using namespace lazyctrl;

namespace {

int body(benchx::BenchReport& report) {
  const topo::Topology topo = benchx::synthetic_topology();
  const std::size_t n = topo.switch_count();
  std::printf("topology: %zu switches, %zu hosts\n\n", n, topo.host_count());

  struct TraceCase {
    const char* name;
    workload::Trace trace;
  };
  std::vector<TraceCase> cases;
  cases.push_back({"Syn-A", benchx::synthetic_trace(topo, 90, 10, 2720, 501)});
  cases.push_back({"Syn-B", benchx::synthetic_trace(topo, 70, 20, 3806, 502)});
  cases.push_back({"Syn-C", benchx::synthetic_trace(topo, 70, 30, 5071, 503)});

  const std::vector<std::size_t> group_counts = {5,  10, 20,  40,
                                                 60, 80, 100, 120, 140};

  std::printf("%-8s", "groups");
  for (std::size_t k : group_counts) std::printf("%8zu", k);
  std::printf("\n");

  for (const TraceCase& c : cases) {
    const graph::WeightedGraph intensity =
        workload::build_intensity_graph(c.trace, topo);
    std::printf("%-8s", c.name);
    for (std::size_t k : group_counts) {
      // Size limit implied by the group count, with modest slack so the
      // partitioner has room to balance (as MLkP does).
      const std::size_t limit =
          static_cast<std::size_t>(static_cast<double>(n) /
                                   static_cast<double>(k) * 1.10) + 1;
      Rng rng(k * 7 + 1);
      graph::MultilevelPartitioner mp(graph::MlkpOptions{.restarts = 3});
      graph::PartitionConstraints constraints{static_cast<double>(limit)};
      graph::Partition p = mp.partition(intensity, k, constraints, rng);
      core::Grouping g;
      g.switch_to_group = p.assignment;
      g.group_count = p.part_count;
      const double winter = core::inter_group_intensity(intensity, g);
      std::printf("%7.1f%%", 100.0 * winter);
      report.metric("winter_" + benchx::slugify(c.name) + "_groups" +
                        std::to_string(k),
                    winter, "fraction");
    }
    std::printf("\n");
  }
  std::printf("\nPaper: ~5%%-50%% rising near-linearly; ordering "
              "Syn-A < Syn-B < Syn-C at every group count.\n");
  return 0;
}

}  // namespace

int main() {
  return benchx::run_benchmark(
      "fig6a_grouping_quality",
      "Fig. 6(a) — Normalized inter-group traffic intensity vs #groups",
      "Winter grows ~linearly in #groups; higher-centrality traces stay "
      "lower (Syn-A < Syn-B < Syn-C)",
      {}, body);
}
