// Reproduces §V-D "storage overhead": the BF-based G-FIB cost per switch is
// linear in the group size; the paper's example is a 46-switch group with
// 16x128-byte entries per filter -> 45 x 2048 B = 92,160 bytes per switch
// at a false-positive rate below 0.1%.
#include <cstdio>
#include <vector>

#include "bloom/bloom_filter.h"
#include "bench_common.h"
#include "core/gfib.h"
#include "harness.h"

using namespace lazyctrl;

namespace {

int body(benchx::BenchReport& report) {
  // Paper filter geometry: 16 entries x 128 B = 2048 B = 16384 bits.
  const BloomParameters params{16384, 8};
  const std::size_t hosts_per_switch = 24;  // ~6.5k hosts / 272 switches

  std::printf("%-12s %16s %18s %18s %14s\n", "group size", "filters/switch",
              "linear B/switch", "sliced B/switch", "measured FP");
  for (std::size_t group : {8u, 16u, 24u, 32u, 46u, 64u, 92u}) {
    // The paper's §V-D storage claim is about the linear per-peer layout;
    // the bit-sliced layout holds the same bits transposed, so its
    // footprint is reported alongside (rows x byte-packed peer stride,
    // stepping at 8-peer boundaries).
    core::GFib gfib(params, core::GFibLayout::kLinear);
    core::GFib sliced(params, core::GFibLayout::kSliced);
    std::uint32_t next_host = 0;
    for (std::uint32_t peer = 1; peer < group; ++peer) {
      std::vector<MacAddress> macs;
      for (std::size_t h = 0; h < hosts_per_switch; ++h) {
        macs.push_back(MacAddress::for_host(next_host++));
      }
      gfib.sync_peer(SwitchId{peer}, macs);
      sliced.sync_peer(SwitchId{peer}, macs);
    }

    // Measured FP: probe MACs never inserted anywhere; any hit is false.
    const int probes = 200000;
    std::uint64_t false_hits = 0, filter_probes = 0;
    std::vector<SwitchId> hits;
    for (int i = 0; i < probes; ++i) {
      const MacAddress unknown = MacAddress::for_host(1000000 + i);
      hits.clear();
      gfib.query_into(BloomHash::of(unknown), hits);
      false_hits += hits.size();
      filter_probes += gfib.peer_count();
    }
    const double fp = filter_probes
                          ? static_cast<double>(false_hits) /
                                static_cast<double>(filter_probes)
                          : 0.0;
    std::printf("%-12zu %16zu %18zu %18zu %13.4f%%\n", group,
                gfib.peer_count(), gfib.storage_bytes(),
                sliced.storage_bytes(), 100.0 * fp);
    const std::string suffix = "_group" + std::to_string(group);
    report.memory_bytes("gfib_bytes_per_switch" + suffix,
                        static_cast<double>(gfib.storage_bytes()));
    report.memory_bytes("gfib_sliced_bytes_per_switch" + suffix,
                        static_cast<double>(sliced.storage_bytes()));
    report.metric("false_positive_rate" + suffix, fp, "fraction");
  }

  std::printf("\nPaper check: group 46 -> 45 filters x 2048 B = 92,160 B; "
              "FP must be < 0.1%%.\n");
  std::printf("Storage grows linearly with group size (bytes/switch = "
              "(g-1) x 2048).\n");
  return 0;
}

}  // namespace

int main() {
  return benchx::run_benchmark(
      "storage_overhead",
      "§V-D — G-FIB storage overhead and false-positive rate",
      "46-switch group -> 92,160 B per switch, FP < 0.1%", {}, body);
}
