// Shared scenario setup for the reproduction benches.
//
// Scales: the paper's real trace has 272 switches / 6509 hosts / 271M flows
// over 24 h; the synthetic traces (Table II) are x10 topologies with
// 2720M-5071M flows. We keep the topologies at full size (switch/host
// counts match the paper) and scale the *flow counts* down by
// kFlowScaleDivisor so a full figure regenerates in seconds on a laptop.
// Controller workload is reported in requests/s at this scale; multiply by
// the divisor for the paper's absolute Krps. Shapes (ratios, trends,
// crossovers) are scale-invariant. Override with env LAZYCTRL_BENCH_SCALE
// (e.g. 0.1 for a quick pass, 10 for a closer-to-paper run).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/rng.h"
#include "topo/builder.h"
#include "workload/generators.h"

namespace lazyctrl::benchx {

/// Paper flow counts divided by this give our default trace sizes.
constexpr double kFlowScaleDivisor = 1000.0;

inline double bench_scale() {
  if (const char* s = std::getenv("LAZYCTRL_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0) return v;
  }
  return 1.0;
}

/// 272 edge switches, ~6.5k hosts: the paper's real data center (§V-A).
inline topo::Topology real_topology(std::uint64_t seed = 101) {
  Rng rng(seed);
  topo::MultiTenantOptions opt;
  opt.switch_count = 272;
  opt.tenant_count = 110;            // ~6.5k hosts at 20-100 VMs/tenant
  opt.min_vms_per_tenant = 20;
  opt.max_vms_per_tenant = 100;
  opt.vms_per_switch = 24;
  return topo::build_multi_tenant(opt, rng);
}

/// 2713 edge switches, ~65k hosts: the x10 synthetic topology (§V-B).
inline topo::Topology synthetic_topology(std::uint64_t seed = 202) {
  Rng rng(seed);
  topo::MultiTenantOptions opt;
  opt.switch_count = 2713;
  opt.tenant_count = 1100;
  opt.min_vms_per_tenant = 20;
  opt.max_vms_per_tenant = 100;
  opt.vms_per_switch = 24;
  return topo::build_multi_tenant(opt, rng);
}

/// The stand-in for the paper's real 271M-flow day-long trace.
inline workload::Trace real_trace(const topo::Topology& topo,
                                  std::uint64_t seed = 303) {
  Rng rng(seed);
  workload::RealLikeOptions opt;
  opt.total_flows = static_cast<std::size_t>(271e6 / kFlowScaleDivisor *
                                             bench_scale());
  return workload::generate_real_like(topo, opt, rng);
}

/// One of the Table II synthetic traces. paper_flows in units of millions.
inline workload::Trace synthetic_trace(const topo::Topology& topo, double p,
                                       double q, double paper_flows_m,
                                       std::uint64_t seed) {
  Rng rng(seed);
  workload::SyntheticOptions opt;
  opt.p = p;
  opt.q = q;
  opt.total_flows = static_cast<std::size_t>(
      paper_flows_m * 1e6 / kFlowScaleDivisor * bench_scale());
  return workload::generate_synthetic(topo, opt, rng);
}

inline void print_header(const std::string& title, const std::string& paper) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Paper reference: %s\n", paper.c_str());
  std::printf("Flow scale: 1/%.0f of the paper's counts (x%.2f override)\n",
              kFlowScaleDivisor, bench_scale());
  std::printf("==============================================================\n");
}

}  // namespace lazyctrl::benchx
