// Appendix C: game-based (modified Rubinstein bargaining) dynamic group
// size negotiation. Shows the negotiated limit across bargaining-power
// settings and its downstream effect: Winter (controller laziness) vs
// per-switch G-FIB memory.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/negotiation.h"
#include "core/sgi.h"
#include "harness.h"
#include "workload/intensity.h"

using namespace lazyctrl;

namespace {

int body(benchx::BenchReport& report) {
  const topo::Topology topo = benchx::real_topology();
  const workload::Trace trace = benchx::real_trace(topo);
  const auto intensity = workload::build_intensity_graph(trace, topo);

  constexpr std::size_t kBloomBytesPerPeer = 2048;  // paper's filter size

  std::printf("%-34s %10s %12s %16s\n",
              "scenario (δc, δs, memory budget)", "limit",
              "Winter", "G-FIB B/switch");

  struct Case {
    const char* name;
    double dc, ds;
    std::size_t memory_bytes;
  };
  const Case cases[] = {
      {"patient ctrl, weak switches", 0.98, 0.60, 256 * 1024},
      {"balanced", 0.95, 0.85, 256 * 1024},
      {"impatient ctrl, strong sw", 0.70, 0.97, 256 * 1024},
      {"balanced, tight memory", 0.95, 0.85, 48 * 1024},
      {"balanced, huge memory", 0.95, 0.85, 1024 * 1024},
  };

  for (const Case& c : cases) {
    core::NegotiationParams params;
    params.controller_discount = c.dc;
    params.switch_discount = c.ds;
    params.controller_preferred_limit = 136;  // half the fabric
    // Switches ask for what their memory affords, never beyond what the
    // controller would even want.
    params.switch_preferred_limit =
        std::min<std::size_t>(params.controller_preferred_limit,
                              core::preferred_limit_from_memory(
                                  c.memory_bytes, kBloomBytesPerPeer,
                                  8 * 1024));

    const std::size_t limit = core::negotiate_group_size(params);

    core::Sgi sgi(core::SgiOptions{.group_size_limit = limit});
    Rng rng(42);
    const core::Grouping g = sgi.initial_grouping(intensity, rng);
    const double winter = core::inter_group_intensity(intensity, g);
    std::printf("%-34s %10zu %11.2f%% %16zu\n", c.name, limit,
                100.0 * winter, (limit - 1) * kBloomBytesPerPeer);
    const std::string slug = benchx::slugify(c.name);
    report.metric("negotiated_limit_" + slug, static_cast<double>(limit),
                  "switches");
    report.metric("winter_" + slug, winter, "fraction");
    report.memory_bytes("gfib_bytes_per_switch_" + slug,
                        static_cast<double>((limit - 1) * kBloomBytesPerPeer));
  }

  std::printf("\nLarger negotiated limits -> lower Winter (lazier "
              "controller) but linearly more switch memory; the bargaining "
              "point moves with each side's patience and the switches' "
              "memory budget.\n");
  return 0;
}

}  // namespace

int main() {
  return benchx::run_benchmark(
      "group_size_negotiation",
      "Appendix C — Rubinstein-bargained dynamic group size",
      "negotiated limit balances controller laziness (big groups) against "
      "switch memory (small groups)",
      {}, body);
}
