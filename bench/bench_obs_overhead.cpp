// Observability overhead benchmark: what does tracing cost the datapath?
//
// Four replay legs per repetition on one identical workload (same fixture
// as bench_micro_datapath's batched leg), interleaved so drift hits all
// legs equally:
//
//   1. tracing off  — the shipping default: one relaxed atomic load per
//                     instrumentation site;
//   2. tracing on   — ring recording live (64Ki-event ring);
//   3. tracing off  — A/A control: the off/off spread is the noise floor
//                     any off/on delta must be read against;
//   4. sampling on  — per-flow latency attribution live (stage histograms
//                     every flow + 1-in-64 flight-recorder ring), tracing
//                     off, so the two instrumentation layers are priced
//                     separately.
//
// The acceptance bar from the telemetry PR is that leg 1 costs <= 1% vs
// the pre-PR build; since the disabled path IS the default path, that is
// checked by diffing BENCH_micro_datapath.json medians across the PR.
// What this bench pins forever is the *enabled* cost and the RSS the ring
// adds, plus an always-current off-throughput series future PRs can diff.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_common.h"
#include "common/rng.h"
#include "core/network.h"
#include "harness.h"
#include "obs/flow_latency.h"
#include "obs/trace.h"
#include "workload/intensity.h"

using namespace lazyctrl;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Resident set size from /proc/self/status, in bytes (0 if unreadable —
/// e.g. a non-Linux host; the metric then reports 0 rather than failing).
double rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0.0;
  char line[256];
  double kb = 0.0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      std::sscanf(line + 6, "%lf", &kb);
      break;
    }
  }
  std::fclose(f);
  return kb * 1024.0;
}

struct Setup {
  topo::Topology topo;
  workload::Trace trace;
  graph::WeightedGraph history;

  Setup()
      : topo(make_topo()),
        trace(make_trace(topo)),
        history(workload::build_intensity_graph(trace, topo, 0, kHour)) {}

  static topo::Topology make_topo() {
    Rng rng(901);
    topo::MultiTenantOptions opt;
    opt.switch_count = 96;
    opt.tenant_count = 40;
    opt.min_vms_per_tenant = 20;
    opt.max_vms_per_tenant = 60;
    opt.vms_per_switch = 24;
    return topo::build_multi_tenant(opt, rng);
  }
  static workload::Trace make_trace(const topo::Topology& topo) {
    Rng rng(902);
    workload::RealLikeOptions opt;
    opt.total_flows =
        static_cast<std::size_t>(200000 * benchx::bench_scale());
    return workload::generate_real_like(topo, opt, rng);
  }
};

/// One leg = kReplaysPerLeg full replays on fresh networks (bootstrap
/// untimed); summing several replays lengthens the timed region enough
/// that a single scheduler hiccup cannot dominate a leg. Returns flows/s.
constexpr int kReplaysPerLeg = 3;

double run_leg(const Setup& s) {
  double total_dt = 0.0;
  double total_flows = 0.0;
  for (int i = 0; i < kReplaysPerLeg; ++i) {
    core::Config cfg;
    cfg.mode = core::ControlMode::kLazyCtrl;
    cfg.grouping.group_size_limit = 18;
    cfg.batching.flow_batch_size = 64;
    core::Network net(s.topo, cfg);
    net.bootstrap(s.history);

    const auto t0 = std::chrono::steady_clock::now();
    net.replay(s.trace);
    total_dt += seconds_since(t0);
    total_flows += static_cast<double>(net.metrics().flows_seen);
  }
  return total_flows / total_dt;
}

int body(benchx::BenchReport& report) {
  static const Setup setup;  // built once, outside every timed region

  obs::recorder().disable();
  const double rss_before = rss_bytes();
  const double off1 = run_leg(setup);

  obs::recorder().enable(obs::TraceRecorder::kDefaultCapacity);
  obs::recorder().clear();
  const double on = run_leg(setup);
  const std::size_t events = obs::recorder().size();
  const auto dropped = obs::recorder().dropped();
  const double ring_bytes = static_cast<double>(
      obs::recorder().capacity() * sizeof(obs::TraceEvent));
  const double rss_after = rss_bytes();
  obs::recorder().disable();

  const double off2 = run_leg(setup);

  obs::flow_recorder().enable(/*sample_every_n=*/64);
  const double sampling = run_leg(setup);
  const std::size_t flow_records = obs::flow_recorder().size();
  obs::flow_recorder().disable();

  // Overheads vs the faster off leg; the off/off spread is the noise
  // floor. Clamped at 0 — a negative "overhead" is just noise.
  const double off_best = std::max(off1, off2);
  const double on_overhead_pct =
      std::max(0.0, (1.0 - on / off_best) * 100.0);
  const double off_spread_pct =
      std::max(0.0, (1.0 - std::min(off1, off2) / off_best) * 100.0);
  const double sampling_overhead_pct =
      std::max(0.0, (1.0 - sampling / off_best) * 100.0);

  std::printf("replay throughput (%zu flows, %zu switches):\n",
              setup.trace.flow_count(), setup.topo.switch_count());
  std::printf("  %-26s %12.0f flows/s\n", "tracing off (leg 1)", off1);
  std::printf("  %-26s %12.0f flows/s   (%zu events, %llu dropped)\n",
              "tracing on", on, events,
              static_cast<unsigned long long>(dropped));
  std::printf("  %-26s %12.0f flows/s\n", "tracing off (leg 2)", off2);
  std::printf("  %-26s %12.0f flows/s   (%zu flow records)\n",
              "flow sampling on (1/64)", sampling, flow_records);
  std::printf("  tracing overhead %.2f%% | sampling overhead %.2f%% | "
              "off/off noise floor %.2f%% | ring %.1f KiB | RSS delta "
              "%.0f KiB\n",
              on_overhead_pct, sampling_overhead_pct, off_spread_pct,
              ring_bytes / 1024.0, (rss_after - rss_before) / 1024.0);

  report.throughput("replay_flows_per_sec_tracing_off",
                    std::min(off1, off2));
  report.throughput("replay_flows_per_sec_tracing_on", on);
  report.metric("tracing_on_overhead_pct", on_overhead_pct, "pct");
  // A/A control: the disabled path is the default path, so this is pure
  // run-to-run noise — the scale against which overhead deltas are read.
  report.metric("tracing_off_overhead_pct", off_spread_pct, "pct");
  report.memory_bytes("rss_delta_bytes", rss_after - rss_before);
  report.memory_bytes("trace_ring_bytes", ring_bytes);
  report.metric("trace_events_recorded", static_cast<double>(events),
                "events");
  report.metric("trace_events_dropped", static_cast<double>(dropped),
                "events");
  report.throughput("replay_flows_per_sec_sampling_on", sampling);
  report.metric("sampling_on_overhead_pct", sampling_overhead_pct, "pct");
  report.metric("flow_records_recorded", static_cast<double>(flow_records),
                "records");
  return 0;
}

}  // namespace

int main() {
  benchx::HarnessOptions opts;
  opts.repetitions = 5;
  opts.warmup = 1;
  return benchx::run_benchmark(
      "obs_overhead",
      "Observability overhead — tracing / flow sampling disabled vs enabled",
      "interleaved off/on/off/sampling replay legs on the micro_datapath "
      "workload; the off/off spread is the noise floor for reading the "
      "enabled-leg deltas. The telemetry PR's <= 1% disabled-path bar is "
      "checked by diffing BENCH_micro_datapath.json across the PR",
      opts, body);
}
