// Reproduces Fig. 8: number of grouping updates per hour for LazyCtrl in
// dynamic mode, on the real and the expanded trace.
//
// Paper shape: at most ~10 updates/hour on the real trace; a moderate
// increase (max ~34/hour) on the expanded trace as the added traffic keeps
// breaking the skew.
#include <cstdio>

#include "bench_common.h"
#include "core/network.h"
#include "harness.h"
#include "workload/intensity.h"

using namespace lazyctrl;

namespace {

std::vector<double> run_updates(const topo::Topology& topo,
                                const workload::Trace& trace) {
  core::Config cfg;
  cfg.mode = core::ControlMode::kLazyCtrl;
  cfg.grouping.group_size_limit = 46;
  cfg.grouping.dynamic_regrouping = true;
  core::Network net(topo, cfg);
  net.bootstrap(workload::build_intensity_graph(trace, topo, 0, kHour));
  net.replay(trace);

  std::vector<double> per_hour;
  const auto& series = net.metrics().grouping_updates;
  for (std::size_t b = 0; b < series.bucket_count(); ++b) {
    per_hour.push_back(static_cast<double>(series.bucket_events(b)));
  }
  return per_hour;
}

int body(benchx::BenchReport& report) {
  const topo::Topology topo = benchx::real_topology();
  const workload::Trace real = benchx::real_trace(topo);
  Rng exp_rng(404);
  const workload::Trace expanded = workload::expand_trace(
      real, topo, 0.30, 8 * kHour, 24 * kHour, exp_rng,
      /*flows_per_new_pair=*/300.0);

  const auto real_updates = run_updates(topo, real);
  const auto exp_updates = run_updates(topo, expanded);

  std::printf("%-22s", "hour");
  for (std::size_t h = 0; h < real_updates.size(); h += 2) {
    std::printf("%5zu-%-2zu", h, h + 2);
  }
  std::printf("\n%-22s", "LazyCtrl (real)");
  double real_max = 0, exp_max = 0;
  for (std::size_t h = 0; h < real_updates.size(); h += 2) {
    const double v = real_updates[h] +
                     (h + 1 < real_updates.size() ? real_updates[h + 1] : 0);
    real_max = std::max(real_max, v / 2);
    std::printf("%8.1f", v / 2);
  }
  std::printf("\n%-22s", "LazyCtrl (expanded)");
  for (std::size_t h = 0; h < exp_updates.size(); h += 2) {
    const double v = exp_updates[h] +
                     (h + 1 < exp_updates.size() ? exp_updates[h + 1] : 0);
    exp_max = std::max(exp_max, v / 2);
    std::printf("%8.1f", v / 2);
  }
  std::printf("\n\nmax updates/hour: real %.1f (paper <= ~10), expanded %.1f "
              "(paper <= ~34)\n",
              real_max, exp_max);
  std::printf("Expanded >= real in the stressed hours confirms the paper's "
              "shape.\n");
  report.metric("max_updates_per_hour_real", real_max, "updates/h");
  report.metric("max_updates_per_hour_expanded", exp_max, "updates/h");
  return 0;
}

}  // namespace

int main() {
  return benchx::run_benchmark(
      "fig8_update_frequency", "Fig. 8 — Switch grouping updates per hour",
      "Real: <= ~10 updates/h; expanded: up to ~34/h", {}, body);
}
