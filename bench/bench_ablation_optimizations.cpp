// Ablation benches for the appendix-B optimizations DESIGN.md calls out:
//   (a) preload during grouping updates — transition behaviour
//   (b) host exclusion — grouping quality vs controller load
//   (c) parallel IncUpdate — wall-clock cost of regrouping
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "core/network.h"
#include "core/sgi.h"
#include "harness.h"
#include "workload/intensity.h"

using namespace lazyctrl;

namespace {

struct RunResult {
  std::uint64_t packet_ins = 0;
  std::uint64_t transition_punts = 0;
  std::uint64_t preload_rules = 0;
  std::uint64_t updates = 0;
  double mean_first_packet_ms = 0;
};

RunResult run(const topo::Topology& topo, const workload::Trace& trace,
              const graph::WeightedGraph& history, core::Config cfg) {
  core::Network net(topo, cfg);
  net.bootstrap(history);
  net.replay(trace);
  const auto& m = net.metrics();
  return {m.controller_packet_ins, m.transition_punts,
          m.preload_rules_installed, m.grouping_update_count,
          m.first_packet_latency_ms.mean()};
}

int body(benchx::BenchReport& report) {
  const topo::Topology topo = benchx::real_topology();
  const workload::Trace real = benchx::real_trace(topo);
  Rng exp_rng(404);
  const workload::Trace expanded = workload::expand_trace(
      real, topo, 0.30, 8 * kHour, 24 * kHour, exp_rng, 300.0);
  const auto history =
      workload::build_intensity_graph(real, topo, 0, kHour);

  // (a) Preload on/off, on the update-heavy expanded trace.
  {
    core::Config cfg;
    cfg.mode = core::ControlMode::kLazyCtrl;
    cfg.grouping.group_size_limit = 46;
    cfg.grouping.dynamic_regrouping = true;
    cfg.grouping.transition_window = 30 * kSecond;  // visible windows

    cfg.grouping.preload_on_update = true;
    const RunResult with_preload = run(topo, expanded, history, cfg);
    cfg.grouping.preload_on_update = false;
    const RunResult without = run(topo, expanded, history, cfg);

    std::printf("\n(a) Preload for seamless grouping update (expanded trace, "
                "2s transition windows)\n");
    std::printf("%-18s %12s %14s %14s %16s\n", "variant", "updates",
                "packet-ins", "trans. punts", "1st-pkt ms");
    std::printf("%-18s %12llu %14llu %14llu %16.3f\n", "preload ON",
                (unsigned long long)with_preload.updates,
                (unsigned long long)with_preload.packet_ins,
                (unsigned long long)with_preload.transition_punts,
                with_preload.mean_first_packet_ms);
    std::printf("%-18s %12llu %14llu %14llu %16.3f\n", "preload OFF",
                (unsigned long long)without.updates,
                (unsigned long long)without.packet_ins,
                (unsigned long long)without.transition_punts,
                without.mean_first_packet_ms);
    std::printf("preload absorbs the transition punts that otherwise hit "
                "the controller during every update.\n");
    report.controller_load("packet_ins_preload_on",
                           static_cast<double>(with_preload.packet_ins));
    report.controller_load("packet_ins_preload_off",
                           static_cast<double>(without.packet_ins));
    report.metric("transition_punts_preload_off",
                  static_cast<double>(without.transition_punts), "punts");
  }

  // (b) Host exclusion on/off.
  {
    core::Config cfg;
    cfg.mode = core::ControlMode::kLazyCtrl;
    cfg.grouping.group_size_limit = 46;
    cfg.grouping.dynamic_regrouping = false;

    cfg.grouping.host_exclusion_tenant_threshold = 0;
    const RunResult off = run(topo, real, history, cfg);
    cfg.grouping.host_exclusion_tenant_threshold = 1;
    const RunResult on = run(topo, real, history, cfg);

    std::printf("\n(b) Host exclusion (switches serving > 1 tenant shed "
                "their smallest tenants to the controller)\n");
    std::printf("%-18s %14s %16s\n", "variant", "packet-ins", "1st-pkt ms");
    std::printf("%-18s %14llu %16.3f\n", "exclusion OFF",
                (unsigned long long)off.packet_ins,
                off.mean_first_packet_ms);
    std::printf("%-18s %14llu %16.3f\n", "exclusion ON",
                (unsigned long long)on.packet_ins, on.mean_first_packet_ms);
    std::printf("exclusion trades extra controller load for cleaner "
                "groups; at this locality level the trade is visible as a "
                "packet-in increase.\n");
    report.controller_load("packet_ins_exclusion_off",
                           static_cast<double>(off.packet_ins));
    report.controller_load("packet_ins_exclusion_on",
                           static_cast<double>(on.packet_ins));
  }

  // (c) Sequential vs parallel IncUpdate on a controlled drift: four
  // 40-switch communities whose affinities shifted pairwise, so several
  // *disjoint* group pairs need merge/split at once.
  {
    constexpr std::size_t kCommunities = 8;
    constexpr std::size_t kSize = 40;
    const auto community_graph = [&](bool drifted) {
      graph::WeightedGraph g(kCommunities * kSize);
      Rng grng(5);
      for (std::size_t c = 0; c < kCommunities; ++c) {
        const auto base = static_cast<graph::VertexId>(c * kSize);
        for (std::size_t i = 0; i < kSize; ++i) {
          for (std::size_t j = i + 1; j < kSize; ++j) {
            if (grng.next_bool(0.3)) g.add_edge(base + i, base + j, 5.0);
          }
        }
      }
      if (drifted) {
        // Communities 0<->1, 2<->3, 4<->5: eight members each develop
        // dominant cross-community affinity (capturable by regrouping).
        for (std::size_t pair = 0; pair < 3; ++pair) {
          const auto a = static_cast<graph::VertexId>(2 * pair * kSize);
          const auto b = static_cast<graph::VertexId>((2 * pair + 1) * kSize);
          for (std::size_t e = 0; e < 8; ++e) {
            g.add_edge(a + static_cast<graph::VertexId>(e),
                       b + static_cast<graph::VertexId>(e), 150.0);
          }
        }
      }
      return g;
    };

    core::Sgi seq(core::SgiOptions{.group_size_limit = kSize + 12,
                                   .max_iterations = 6,
                                   .parallel = false});
    core::Sgi par(core::SgiOptions{.group_size_limit = kSize + 12,
                                   .max_iterations = 2,
                                   .parallel = true,
                                   .parallel_batch = 3});
    Rng rng(7);
    core::Grouping g0 = seq.initial_grouping(community_graph(false), rng);
    const graph::WeightedGraph drift = community_graph(true);

    core::Grouping g1 = g0, g2 = g0;
    Rng r1(8), r2(8);
    const auto t0 = std::chrono::steady_clock::now();
    const auto rs = seq.incremental_update(g1, drift, r1);
    const auto t1 = std::chrono::steady_clock::now();
    const auto rp = par.incremental_update(g2, drift, r2);
    const auto t2 = std::chrono::steady_clock::now();

    const double seq_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double par_ms =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    std::printf("\n(c) IncUpdate under 3-pair drift: sequential iterations "
                "vs 3-pair parallel batches\n");
    std::printf("%-18s %10s %12s %22s\n", "variant", "time", "iterations",
                "Winter before->after");
    std::printf("%-18s %8.1fms %12d %14.4f -> %.4f\n", "sequential", seq_ms,
                rs.iterations, rs.inter_group_before, rs.inter_group_after);
    std::printf("%-18s %8.1fms %12d %14.4f -> %.4f\n", "parallel", par_ms,
                rp.iterations, rp.inter_group_before, rp.inter_group_after);
    std::printf("the parallel variant reaches the same Winter in fewer "
                "rounds; with per-pair threads the wall-clock would shrink "
                "accordingly (appendix B).\n");
    report.metric("incupdate_sequential_ms", seq_ms, "ms");
    report.metric("incupdate_parallel_ms", par_ms, "ms");
    report.metric("winter_after_sequential", rs.inter_group_after,
                  "fraction");
    report.metric("winter_after_parallel", rp.inter_group_after, "fraction");
  }
  return 0;
}

}  // namespace

int main() {
  return benchx::run_benchmark(
      "ablation_optimizations",
      "Appendix B ablations — preload, host exclusion, parallel IncUpdate",
      "design-choice ablations called out in DESIGN.md", {}, body);
}
