// Reproduces Fig. 9: steady-state average per-packet forwarding latency in
// 2-hour buckets over the 24-hour real trace, OpenFlow vs LazyCtrl.
//
// Paper shape: LazyCtrl sits ~10% below standard OpenFlow across the day
// (0.50-0.60 ms vs 0.55-0.68 ms on their testbed).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/network.h"
#include "harness.h"
#include "workload/intensity.h"

using namespace lazyctrl;

namespace {

std::vector<double> run_latency(const topo::Topology& topo,
                                const workload::Trace& trace,
                                core::ControlMode mode, double* overall_ms) {
  core::Config cfg;
  cfg.mode = mode;
  cfg.grouping.group_size_limit = 46;
  core::Network net(topo, cfg);
  net.bootstrap(workload::build_intensity_graph(trace, topo, 0, kHour));
  net.replay(trace);

  std::vector<double> buckets;
  const auto& series = net.metrics().packet_latency;
  double sum = 0;
  std::uint64_t events = 0;
  for (std::size_t b = 0; b + 1 < series.bucket_count(); b += 2) {
    const double s = series.bucket_sum(b) + series.bucket_sum(b + 1);
    const auto e = series.bucket_events(b) + series.bucket_events(b + 1);
    buckets.push_back(e ? s / static_cast<double>(e) : 0.0);
    sum += s;
    events += e;
  }
  *overall_ms = events ? sum / static_cast<double>(events) : 0.0;
  return buckets;
}

int body(benchx::BenchReport& report) {
  const topo::Topology topo = benchx::real_topology();
  const workload::Trace real = benchx::real_trace(topo);

  double of_ms = 0, lc_ms = 0;
  const auto of = run_latency(topo, real, core::ControlMode::kOpenFlow,
                              &of_ms);
  const auto lc = run_latency(topo, real, core::ControlMode::kLazyCtrl,
                              &lc_ms);

  std::printf("%-12s", "hours");
  for (std::size_t b = 0; b < of.size(); ++b) {
    std::printf("%5zu-%-2zu", 2 * b, 2 * b + 2);
  }
  std::printf("\n%-12s", "OpenFlow");
  for (double v : of) std::printf("%8.3f", v);
  std::printf("\n%-12s", "LazyCtrl");
  for (double v : lc) std::printf("%8.3f", v);
  std::printf("\n\noverall mean: OpenFlow %.3f ms, LazyCtrl %.3f ms -> "
              "%.1f%% reduction (paper: ~10%%)\n",
              of_ms, lc_ms, 100.0 * (1.0 - lc_ms / of_ms));
  std::printf("note: absolute values depend on the simulator's latency "
              "constants (config.h LatencyModel); the LazyCtrl-below-"
              "OpenFlow shape is the reproduced result.\n");
  report.latency_ms("packet_latency_mean_ms_openflow", of_ms);
  report.latency_ms("packet_latency_mean_ms_lazyctrl", lc_ms);
  report.metric("latency_reduction_pct", 100.0 * (1.0 - lc_ms / of_ms),
                "percent");
  return 0;
}

}  // namespace

int main() {
  return benchx::run_benchmark(
      "fig9_steady_latency",
      "Fig. 9 — Steady-state average forwarding latency (ms per packet)",
      "LazyCtrl ~10% below standard OpenFlow across the day", {}, body);
}
