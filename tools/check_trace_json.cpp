// CI gate for Chrome trace_event files emitted by the obs::TraceRecorder.
//
//   check_trace_json <file> [required_category...]
//
// Validates that <file> is a well-formed Chrome trace (the format
// chrome://tracing and Perfetto load): a JSON object whose "traceEvents"
// array is non-empty, every event carries the phase-appropriate fields,
// timestamps are monotone per (pid, tid) track in file order, and — when
// required categories are listed — each appears on at least one event.
//
// Flow-latency spans (category "flowlat", emitted for --flow-sample runs
// by the FlowLatencyRecorder) get extra structural checks: they must be
// complete "X" spans named after a known stage, carrying a numeric
// "flow" arg. List "flowlat" as a required category when validating a
// sampling-enabled run.
// Exit codes: 0 ok, 1 validation failure, 2 unreadable file / bad usage.
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "harness.h"

using lazyctrl::benchx::JsonValue;

namespace {

bool is_number(const JsonValue* v) {
  return v != nullptr && v->kind == JsonValue::Kind::kNumber;
}

bool is_string(const JsonValue* v) {
  return v != nullptr && v->kind == JsonValue::Kind::kString;
}

int fail(std::size_t index, const std::string& reason) {
  std::fprintf(stderr, "INVALID traceEvents[%zu]: %s\n", index,
               reason.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <file> [required_category...]\n",
                 argv[0]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "check_trace_json: cannot read %s\n", argv[1]);
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  JsonValue root;
  std::string error;
  if (!lazyctrl::benchx::parse_json(buf.str(), &root, &error)) {
    std::fprintf(stderr, "INVALID %s: %s\n", argv[1], error.c_str());
    return 1;
  }
  if (root.kind != JsonValue::Kind::kObject) {
    std::fprintf(stderr, "INVALID %s: root is not an object\n", argv[1]);
    return 1;
  }
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    std::fprintf(stderr, "INVALID %s: missing traceEvents array\n", argv[1]);
    return 1;
  }
  if (events->array.empty()) {
    std::fprintf(stderr, "INVALID %s: traceEvents is empty\n", argv[1]);
    return 1;
  }

  static const std::set<std::string> kKnownPhases = {"M", "i", "I",
                                                    "X", "B", "E"};
  // Last timestamp seen on each (pid, tid) track; the exporter sorts each
  // track, so a regression here means the file would render scrambled.
  std::map<std::pair<double, double>, double> last_ts;
  std::set<std::string> categories;
  std::size_t timed_events = 0;
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& e = events->array[i];
    if (e.kind != JsonValue::Kind::kObject) {
      return fail(i, "event is not an object");
    }
    const JsonValue* ph = e.find("ph");
    if (!is_string(ph)) return fail(i, "missing string \"ph\"");
    if (!kKnownPhases.contains(ph->string)) {
      return fail(i, "unknown phase \"" + ph->string + "\"");
    }
    if (!is_string(e.find("name"))) return fail(i, "missing string \"name\"");
    if (!is_number(e.find("pid"))) return fail(i, "missing numeric \"pid\"");
    if (!is_number(e.find("tid"))) return fail(i, "missing numeric \"tid\"");
    if (ph->string == "M") continue;  // metadata carries no ts/cat

    const JsonValue* ts = e.find("ts");
    if (!is_number(ts)) return fail(i, "missing numeric \"ts\"");
    const JsonValue* cat = e.find("cat");
    if (!is_string(cat)) return fail(i, "missing string \"cat\"");
    categories.insert(cat->string);
    ++timed_events;
    if (ph->string == "X") {
      const JsonValue* dur = e.find("dur");
      if (!is_number(dur)) return fail(i, "X event missing numeric \"dur\"");
      if (dur->number < 0) return fail(i, "X event with negative dur");
    }
    if (cat->string == "flowlat") {
      static const std::set<std::string> kFlowStages = {
          "edge", "retry_backoff", "punt_rtt", "ctrl_queue", "install", "e2e"};
      if (ph->string != "X") {
        return fail(i, "flowlat event is not an \"X\" span");
      }
      if (!kFlowStages.contains(e.find("name")->string)) {
        return fail(i, "flowlat span with unknown stage name \"" +
                           e.find("name")->string + "\"");
      }
      const JsonValue* args = e.find("args");
      if (args == nullptr || args->kind != JsonValue::Kind::kObject ||
          !is_number(args->find("flow"))) {
        return fail(i, "flowlat span missing numeric args.flow");
      }
    }
    const std::pair<double, double> track{e.find("pid")->number,
                                          e.find("tid")->number};
    if (const auto it = last_ts.find(track);
        it != last_ts.end() && ts->number < it->second) {
      return fail(i, "ts goes backwards on its (pid, tid) track");
    }
    last_ts[track] = ts->number;
  }

  int missing = 0;
  for (int i = 2; i < argc; ++i) {
    if (!categories.contains(argv[i])) {
      std::fprintf(stderr, "INVALID %s: no event with category \"%s\"\n",
                   argv[1], argv[i]);
      ++missing;
    }
  }
  if (missing > 0) return 1;

  std::string cat_list;
  for (const std::string& c : categories) {
    if (!cat_list.empty()) cat_list += ",";
    cat_list += c;
  }
  std::printf("ok      %s (%zu events, %zu tracks, categories: %s)\n",
              argv[1], timed_events, last_ts.size(), cat_list.c_str());
  return 0;
}
