// lazyctrl_fuzz — seeded scenario fuzzing driver: generate N random
// valid scenarios (src/scenario/fuzz.h), run each through the
// conservation-invariant checker (core/invariants.h) plus the
// bit-identity rerun determinism check, and shrink + serialize any
// failing scenario to a minimal `.scn` repro.
//
//   lazyctrl_fuzz [options]
//
//   --seeds N       number of seeds to run (default 25)
//   --seed-base B   first seed; seed i runs B+i (default 1, so runs are
//                   reproducible — CI keeps the default)
//   --scale F       multiply each scenario's drawn flow count by F
//                   (smoke runs use 0.1; a floor of 200 flows applies)
//   --max-events M  cap on drawn script events per scenario (default 10)
//   --out DIR       where shrunk failing .scn repros land
//                   (default fuzz-failures/)
//
// Exit codes: 0 every seed passed; 1 at least one seed failed (its
// shrunk repro was written to --out); 2 usage error.
//
// Each seed runs three oracles (src/scenario/fuzz.h): the invariant-
// checked run, the bit-identity rerun carrying a checkpoint fence, and
// the checkpoint-restore resume whose finished metrics must match the
// rerun's. When a shrunk failure still reaches its checkpoint fence, the
// snapshot is written next to the repro as <name>.ckpt so the failing
// state can be restored directly:
//   lazyctrl_run --resume fuzz-failures/fuzz_<seed>.ckpt
//
// A written repro replays standalone with the scenario CLI:
//   lazyctrl_run fuzz-failures/fuzz_<seed>.scn
// and belongs in examples/scenarios/regressions/ once the bug is fixed
// (see docs/SCENARIOS.md, "Fuzzing & invariants").
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "ckpt/checkpoint.h"
#include "scenario/fuzz.h"
#include "scenario/spec.h"

using namespace lazyctrl;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seeds N] [--seed-base B] [--scale F] "
               "[--max-events M] [--out DIR]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t seeds = 25;
  std::uint64_t seed_base = 1;
  scenario::FuzzOptions opt;
  std::string out_dir = "fuzz-failures";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s expects a value\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--seeds") {
      const char* v = next("--seeds");
      if (v == nullptr) return 2;
      const long n = std::atol(v);
      if (n < 1) {
        std::fprintf(stderr, "--seeds expects a positive integer\n");
        return 2;
      }
      seeds = static_cast<std::size_t>(n);
    } else if (arg == "--seed-base") {
      const char* v = next("--seed-base");
      if (v == nullptr) return 2;
      seed_base = std::strtoull(v, nullptr, 10);
    } else if (arg == "--scale") {
      const char* v = next("--scale");
      if (v == nullptr) return 2;
      opt.scale = std::atof(v);
      if (opt.scale <= 0) {
        std::fprintf(stderr, "--scale expects a positive number\n");
        return 2;
      }
    } else if (arg == "--max-events") {
      const char* v = next("--max-events");
      if (v == nullptr) return 2;
      const long n = std::atol(v);
      if (n < 0) {
        std::fprintf(stderr, "--max-events expects a non-negative count\n");
        return 2;
      }
      opt.max_events = static_cast<std::size_t>(n);
    } else if (arg == "--out") {
      const char* v = next("--out");
      if (v == nullptr) return 2;
      out_dir = v;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  std::size_t failures = 0;
  for (std::size_t i = 0; i < seeds; ++i) {
    const std::uint64_t seed = seed_base + i;
    const scenario::ScenarioSpec spec =
        scenario::generate_scenario(seed, opt);
    const scenario::FuzzRunResult result =
        scenario::run_scenario_with_checks(spec);
    if (result.ok()) {
      std::printf("seed %llu  %-12s ok (%zu events, %zu flows, %s)\n",
                  static_cast<unsigned long long>(seed), spec.name.c_str(),
                  spec.events.size(), spec.workload.flows,
                  spec.config.mode == core::ControlMode::kLazyCtrl
                      ? "lazyctrl"
                      : "openflow");
      continue;
    }
    ++failures;
    std::fprintf(stderr, "seed %llu  %s FAILED\n%s",
                 static_cast<unsigned long long>(seed), spec.name.c_str(),
                 result.failure_text().c_str());

    // Shrink while the same class of failure (invalid vs. ran-and-failed)
    // reproduces, then serialize the minimal repro.
    const bool originally_valid = result.valid;
    const scenario::ScenarioSpec shrunk = scenario::shrink_scenario(
        spec, [&](const scenario::ScenarioSpec& candidate) {
          const scenario::FuzzRunResult r =
              scenario::run_scenario_with_checks(candidate);
          return !r.ok() && r.valid == originally_valid;
        });
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    const std::string path = out_dir + "/" + spec.name + ".scn";
    std::ofstream out(path);
    if (out) {
      out << scenario::serialize_scenario(shrunk);
      std::fprintf(stderr, "  shrunk to %zu events (from %zu) -> %s\n",
                   shrunk.events.size(), spec.events.size(), path.c_str());
    } else {
      std::fprintf(stderr, "  cannot write repro to %s\n", path.c_str());
    }
    // When the shrunk failure still reaches its checkpoint fence, keep
    // the snapshot beside the repro so the failing state restores
    // directly (lazyctrl_run --resume).
    const scenario::FuzzRunResult shrunk_result =
        scenario::run_scenario_with_checks(shrunk);
    if (!shrunk_result.snapshot.empty()) {
      const std::string snap_path = out_dir + "/" + spec.name + ".ckpt";
      std::string snap_err;
      if (ckpt::write_snapshot_file(snap_path, shrunk_result.snapshot,
                                    &snap_err)) {
        std::fprintf(stderr, "  checkpoint at t=%s -> %s\n",
                     scenario::format_duration(shrunk_result.snapshot_at)
                         .c_str(),
                     snap_path.c_str());
      } else {
        std::fprintf(stderr, "  cannot write snapshot: %s\n",
                     snap_err.c_str());
      }
    }
  }

  std::printf("%zu/%zu seeds passed\n", seeds - failures, seeds);
  return failures == 0 ? 0 : 1;
}
