// lazyctrl_run — execute a declarative scenario (.scn) end to end and
// emit BENCH_scenario_<name>.json through the shared bench harness.
//
//   lazyctrl_run <scenario.scn> [options]
//
//   --set SECTION.KEY=VALUE  override any spec value through the same key
//                            grammar as the file (repeatable), e.g.
//                            --set config.runtime.num_shards=2
//                            --set workload.flows=500
//   --scale F                multiply workload.flows by F (smoke runs)
//   --reps N                 harness repetitions (default 2); with N >= 2
//                            every repetition's RunMetrics must be
//                            bit-identical to the first, so the default
//                            run doubles as a determinism check
//   --json-dir DIR           where BENCH_*.json lands (overrides env
//                            LAZYCTRL_BENCH_JSON_DIR)
//   --print-spec             print the canonical serialized spec and exit
//   --trace FILE             record sim-time/wall-clock trace events during
//                            the final repetition and write them to FILE in
//                            Chrome trace_event JSON (load in Perfetto or
//                            chrome://tracing; see docs/OBSERVABILITY.md)
//   --flow-sample N          flight-record every N-th flow (deterministic,
//                            keyed on the flow id — bit-identical metrics
//                            with any N, including 0 = off). Sampled flows
//                            land in --trace output as per-stage spans.
//                            Stage latency histograms + the
//                            latency_*_p*_ns JSON metrics are always on,
//                            independent of N.
//   --stats-dump             after the final repetition, enumerate the
//                            network's obs::Registry (counters + gauges) to
//                            stdout and into the JSON "stats" section
//   --log-level LEVEL        set log verbosity (debug|info|warn|error or
//                            0-3; overrides LAZYCTRL_LOG)
//   --checkpoint-every DUR   take a full-state snapshot every DUR of sim
//                            time during the first repetition (plus any
//                            checkpoint_at events in the spec) and write
//                            each one to --checkpoint-dir as
//                            <name>-<index>.ckpt. Snapshots are
//                            metrics-neutral: later repetitions run
//                            without them and must stay bit-identical.
//   --checkpoint-dir DIR     where .ckpt files land (default ".")
//   --resume FILE            instead of a .scn: restore FILE, finish the
//                            replay, then run the same scenario
//                            uninterrupted in-process and require the two
//                            final RunMetrics to be bit-identical
//                            (exit 1 + diff report otherwise)
//
// Exit codes: 0 ok; 1 scenario ran but a repetition's metrics diverged
// (non-determinism — a bug) or a resumed run diverged from the
// uninterrupted one; 2 parse/semantic/usage failure.
//
// The spec grammar and every event primitive are documented in
// docs/SCENARIOS.md.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <filesystem>

#include "ckpt/checkpoint.h"
#include "common/log.h"
#include "core/metrics.h"
#include "core/network.h"
#include "harness.h"
#include "obs/flow_latency.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "scenario/runner.h"
#include "scenario/spec.h"

using namespace lazyctrl;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <scenario.scn> [--set section.key=value]... "
               "[--scale F] [--reps N] [--json-dir DIR] [--print-spec]\n"
               "          [--trace FILE] [--flow-sample N] [--stats-dump] "
               "[--log-level LEVEL]\n"
               "          [--checkpoint-every DUR] [--checkpoint-dir DIR]\n"
               "       %s --resume FILE.ckpt\n",
               argv0, argv0);
  return 2;
}

void report_run(const scenario::ScenarioRunner& runner,
                benchx::BenchReport& report) {
  const core::RunMetrics& m = runner.metrics();
  const auto& counts = runner.event_counts();
  const auto d = [](std::uint64_t v) { return static_cast<double>(v); };

  report.metric("flows_total", d(m.flows_seen), "flows");
  report.metric("flows_local_delivery", d(m.flows_local_delivery), "flows");
  report.metric("flows_intra_group", d(m.flows_intra_group), "flows");
  report.metric("flows_inter_group", d(m.flows_inter_group), "flows");
  report.metric("flow_table_hits", d(m.flows_flow_table_hit), "flows");
  report.controller_load("controller_packet_ins", d(m.controller_packet_ins));
  report.metric("inter_group_fraction",
                m.flows_seen ? d(m.flows_inter_group) / d(m.flows_seen) : 0.0,
                "fraction");
  report.latency_ms("first_packet_latency_ms_mean",
                    m.first_packet_latency_ms.mean());
  report.latency_ms("controller_queue_delay_ms_mean",
                    m.controller_queue_delay_ms.mean());
  report.latency_ms("controller_queue_delay_ms_max",
                    m.controller_queue_delay_ms.max());
  report.metric("grouping_updates", d(m.grouping_update_count), "updates");
  report.metric("dgm_plans_applied", d(m.dgm_plans_applied), "plans");
  report.metric("preload_rules_installed", d(m.preload_rules_installed),
                "rules");
  report.metric("bf_false_positive_copies", d(m.bf_false_positive_copies),
                "packets");
  report.metric("failover_detections",
                d(runner.network().failover_event_count()), "events");
  report.metric("flows_degraded", d(m.flows_degraded), "flows");
  report.metric("flows_dropped", d(m.flows_dropped), "flows");
  report.metric("punt_retries", d(m.punt_retries), "attempts");
  report.metric("punt_timeouts", d(m.punt_timeouts), "flows");
  report.metric("admission_drops", d(m.ctrl_admission_drops), "requests");
  report.metric("events_scheduled", d(counts.scheduled), "events");
  report.metric("events_applied", d(counts.applied), "events");
  report.metric("events_skipped", d(counts.skipped), "events");

  std::printf(
      "  flows %llu | local %llu | intra-group %llu | inter-group %llu | "
      "table hits %llu\n",
      static_cast<unsigned long long>(m.flows_seen),
      static_cast<unsigned long long>(m.flows_local_delivery),
      static_cast<unsigned long long>(m.flows_intra_group),
      static_cast<unsigned long long>(m.flows_inter_group),
      static_cast<unsigned long long>(m.flows_flow_table_hit));
  std::printf(
      "  controller PacketIns %llu | mean setup %.3f ms | max ctrl queue "
      "%.3f ms\n",
      static_cast<unsigned long long>(m.controller_packet_ins),
      m.first_packet_latency_ms.mean(), m.controller_queue_delay_ms.max());
  std::printf(
      "  events: %zu scheduled, %zu applied, %zu skipped | grouping "
      "updates %llu | failover detections %zu\n",
      counts.scheduled, counts.applied, counts.skipped,
      static_cast<unsigned long long>(m.grouping_update_count),
      runner.network().failover_event_count());
}

constexpr std::pair<const char*, double> kReportedQuantiles[] = {
    {"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}, {"p999", 0.999}};

// Stage-latency percentiles from the flow-attribution histograms
// (obs/flow_latency.h): whole-run quantiles as first-class metrics
// ("latency_e2e_p99_ns", required for scenario benches by
// check_bench_json), per-phase quantiles as stats entries keyed
// "latency.phase<i>.<event label>.<stage>_p<N>_ns".
void report_latency(benchx::BenchReport& report) {
  const obs::FlowLatencyRecorder& rec = obs::flow_recorder();
  for (std::size_t i = 0; i < obs::kNumFlowStages; ++i) {
    const auto stage = static_cast<obs::FlowStage>(i);
    const auto& h = rec.stage_histogram(stage);
    for (const auto& [name, p] : kReportedQuantiles) {
      report.metric(
          std::string("latency_") + obs::flow_stage_name(stage) + "_" +
              name + "_ns",
          h.quantile(p), "ns");
    }
  }
  for (std::size_t pi = 0; pi < rec.phases().size(); ++pi) {
    const auto& phase = rec.phases()[pi];
    for (std::size_t i = 0; i < obs::kNumFlowStages; ++i) {
      const auto stage = static_cast<obs::FlowStage>(i);
      const auto& h = phase.stages[i];
      if (h.count() == 0) continue;
      for (const auto& [name, p] : {std::pair{"p50", 0.50}, {"p99", 0.99}}) {
        report.stat("latency.phase" + std::to_string(pi) + "." + phase.label +
                        "." + obs::flow_stage_name(stage) + "_" + name +
                        "_ns",
                    h.quantile(p));
      }
    }
  }
  const auto& e2e = rec.stage_histogram(obs::FlowStage::kE2e);
  std::printf(
      "  latency e2e p50 %.0f ns | p99 %.0f ns | ctrl_queue p99 %.0f ns | "
      "%llu samples, %zu flight-recorded\n",
      e2e.quantile(0.50), e2e.quantile(0.99),
      rec.stage_histogram(obs::FlowStage::kCtrlQueue).quantile(0.99),
      static_cast<unsigned long long>(e2e.count()), rec.size());
}

// --resume FILE: restore the snapshot, drive the replay to the horizon,
// then run the embedded scenario uninterrupted in the same process and
// require both final RunMetrics to be bit-identical. This is the CI gate
// for the checkpoint subsystem (ckpt-smoke), not a bench run — no
// harness JSON is emitted.
int resume_main(const std::string& snapshot_path) {
  std::vector<std::uint8_t> bytes;
  std::string err;
  if (!ckpt::read_snapshot_file(snapshot_path, &bytes, &err)) {
    std::fprintf(stderr, "--resume: %s\n", err.c_str());
    return 2;
  }
  auto resumed = scenario::ScenarioRunner::restore(bytes, &err);
  if (resumed == nullptr) {
    std::fprintf(stderr, "--resume %s: invalid snapshot: %s\n",
                 snapshot_path.c_str(), err.c_str());
    return 2;
  }
  std::printf("resuming '%s' from %s\n", resumed->spec().name.c_str(),
              snapshot_path.c_str());
  if (!resumed->finish(&err)) {
    std::fprintf(stderr, "resumed replay failed: %s\n", err.c_str());
    return 2;
  }

  auto full = std::make_unique<scenario::ScenarioRunner>(resumed->spec());
  if (!full->run(&err)) {
    std::fprintf(stderr, "uninterrupted comparison run failed: %s\n",
                 err.c_str());
    return 2;
  }
  if (!resumed->metrics().identical_to(full->metrics())) {
    std::fprintf(stderr,
                 "RESUME DIVERGED: the resumed run's final RunMetrics "
                 "differ from the uninterrupted run's\n  %s\n",
                 resumed->metrics().diff_report(full->metrics()).c_str());
    return 1;
  }
  const core::RunMetrics& m = resumed->metrics();
  std::printf(
      "  resumed run bit-identical to uninterrupted: %llu flows, %llu "
      "controller PacketIns, mean setup %.3f ms\n",
      static_cast<unsigned long long>(m.flows_seen),
      static_cast<unsigned long long>(m.controller_packet_ins),
      m.first_packet_latency_ms.mean());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);

  std::string path;
  std::vector<std::string> overrides;
  double scale = 1.0;
  int reps = 2;
  bool print_spec = false;
  std::string trace_path;
  bool stats_dump = false;
  int flow_sample = 0;
  SimDuration checkpoint_every = 0;
  std::string checkpoint_dir = ".";
  std::string resume_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s expects a value\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--set") {
      const char* v = next("--set");
      if (v == nullptr) return 2;
      overrides.emplace_back(v);
    } else if (arg == "--scale") {
      const char* v = next("--scale");
      if (v == nullptr) return 2;
      scale = std::atof(v);
      if (scale <= 0) {
        std::fprintf(stderr, "--scale expects a positive number\n");
        return 2;
      }
    } else if (arg == "--reps") {
      const char* v = next("--reps");
      if (v == nullptr) return 2;
      reps = std::atoi(v);
      if (reps < 1) {
        std::fprintf(stderr, "--reps expects a positive integer\n");
        return 2;
      }
    } else if (arg == "--json-dir") {
      const char* v = next("--json-dir");
      if (v == nullptr) return 2;
      setenv("LAZYCTRL_BENCH_JSON_DIR", v, 1);
    } else if (arg == "--print-spec") {
      print_spec = true;
    } else if (arg == "--trace") {
      const char* v = next("--trace");
      if (v == nullptr) return 2;
      trace_path = v;
    } else if (arg == "--flow-sample") {
      const char* v = next("--flow-sample");
      if (v == nullptr) return 2;
      flow_sample = std::atoi(v);
      if (flow_sample < 0) {
        std::fprintf(stderr, "--flow-sample expects a non-negative integer\n");
        return 2;
      }
    } else if (arg == "--checkpoint-every") {
      const char* v = next("--checkpoint-every");
      if (v == nullptr) return 2;
      if (!scenario::parse_duration(v, &checkpoint_every) ||
          checkpoint_every <= 0) {
        std::fprintf(stderr,
                     "--checkpoint-every expects a positive duration "
                     "(e.g. 10m), got %s\n",
                     v);
        return 2;
      }
    } else if (arg == "--checkpoint-dir") {
      const char* v = next("--checkpoint-dir");
      if (v == nullptr) return 2;
      checkpoint_dir = v;
    } else if (arg == "--resume") {
      const char* v = next("--resume");
      if (v == nullptr) return 2;
      resume_path = v;
    } else if (arg == "--stats-dump") {
      stats_dump = true;
    } else if (arg == "--log-level") {
      const char* v = next("--log-level");
      if (v == nullptr) return 2;
      LogLevel level;
      if (!parse_log_level(v, &level)) {
        std::fprintf(stderr,
                     "--log-level expects debug|info|warn|error or 0-3, "
                     "got %s\n",
                     v);
        return 2;
      }
      set_log_level(level);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return usage(argv[0]);
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "only one scenario file may be given\n");
      return usage(argv[0]);
    }
  }
  if (!resume_path.empty()) {
    if (!path.empty()) {
      std::fprintf(stderr,
                   "--resume carries its own scenario; drop the .scn "
                   "argument\n");
      return 2;
    }
    return resume_main(resume_path);
  }
  if (path.empty()) return usage(argv[0]);

  scenario::ParseResult parsed = scenario::parse_scenario_file(path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: invalid scenario\n%s", path.c_str(),
                 parsed.error_text().c_str());
    return 2;
  }
  scenario::ScenarioSpec spec = std::move(parsed.spec);
  for (const std::string& o : overrides) {
    std::string err;
    if (!scenario::apply_override(spec, o, &err)) {
      std::fprintf(stderr, "--set %s: %s\n", o.c_str(), err.c_str());
      return 2;
    }
  }
  if (scale != 1.0) {
    spec.workload.flows = static_cast<std::size_t>(
        static_cast<double>(spec.workload.flows) * scale);
  }

  if (print_spec) {
    std::fputs(scenario::serialize_scenario(spec).c_str(), stdout);
    return 0;
  }

  // Mirror the harness's repetition AND warmup overrides so the
  // determinism verdict below can be recorded exactly once, on the very
  // last body invocation — a per-rep 0/1 sample would be
  // median-aggregated and could mask a minority diverging rep at
  // --reps >= 3, and warmup invocations advance the same counter.
  const auto env_count = [](const char* name, int fallback) {
    if (const char* s = std::getenv(name)) {
      const int v = std::atoi(s);
      if (v >= 0) return v;
    }
    return fallback;
  };
  const int total_reps = std::max(1, env_count("LAZYCTRL_BENCH_REPS", reps));
  const int total_invocations =
      total_reps + env_count("LAZYCTRL_BENCH_WARMUP", 0);

  // Only the first run's RunMetrics survive as the determinism
  // reference — keeping the whole runner (network, topology, trace)
  // alive would double peak memory during every later repetition.
  std::optional<core::RunMetrics> reference;
  int rep_index = 0;
  bool all_identical = true;
  if (!trace_path.empty()) obs::recorder().enable();
  // Stage histograms are always on (the latency_*_ns metrics are part of
  // the scenario JSON schema); --flow-sample only adds ring records.
  obs::flow_recorder().enable(static_cast<std::uint32_t>(flow_sample));
  const int status = benchx::run_benchmark(
      "scenario_" + benchx::slugify(spec.name),
      "Scenario — " + spec.name,
      spec.description.empty() ? path : spec.description,
      {.repetitions = reps, .warmup = 0},
      [&](benchx::BenchReport& report) {
        ++rep_index;
        // Each invocation records into a fresh ring so the written file
        // covers exactly the final repetition.
        if (!trace_path.empty()) obs::recorder().clear();
        obs::flow_recorder().clear();
        auto runner = std::make_unique<scenario::ScenarioRunner>(spec);
        // Snapshots are taken on the first repetition only; later reps
        // run without the extra fences and the bit-identity comparison
        // below doubles as the snapshot-neutrality check.
        if (checkpoint_every > 0 && rep_index == 1) {
          std::vector<SimTime> fences;
          for (SimTime t = checkpoint_every; t < spec.workload.horizon;
               t += checkpoint_every) {
            fences.push_back(t);
          }
          runner->add_checkpoint_times(std::move(fences));
        }
        std::string error;
        if (!runner->run(&error)) {
          std::fprintf(stderr, "scenario failed: %s\n", error.c_str());
          return 2;
        }
        if (rep_index == 1 && !runner->snapshots().empty()) {
          std::error_code ec;
          std::filesystem::create_directories(checkpoint_dir, ec);
          const std::string slug = benchx::slugify(spec.name);
          std::size_t snap_index = 0;
          for (const auto& snap : runner->snapshots()) {
            if (!snap.error.empty()) {
              std::fprintf(stderr, "checkpoint at t=%s failed: %s\n",
                           scenario::format_duration(snap.at).c_str(),
                           snap.error.c_str());
              return 2;
            }
            const std::string file = checkpoint_dir + "/" + slug + "-" +
                                     std::to_string(snap_index) + ".ckpt";
            if (!ckpt::write_snapshot_file(file, snap.bytes, &error)) {
              std::fprintf(stderr, "%s\n", error.c_str());
              return 2;
            }
            std::printf("  checkpoint %zu at t=%s -> %s (%zu bytes)\n",
                        snap_index,
                        scenario::format_duration(snap.at).c_str(),
                        file.c_str(), snap.bytes.size());
            ++snap_index;
          }
        }
        report_run(*runner, report);
        bool identical = true;
        if (!reference.has_value()) {
          reference = runner->metrics();
        } else {
          identical = runner->metrics().identical_to(*reference);
          if (!identical) {
            all_identical = false;
            // diff_report names the first diverging field (and, for a
            // time series, the bucket) — actionable, unlike a bare
            // exit 1.
            std::fprintf(stderr,
                         "NON-DETERMINISTIC: this repetition's RunMetrics "
                         "differ from the first run's\n  %s\n",
                         runner->metrics().diff_report(*reference).c_str());
          }
        }
        if (rep_index >= total_invocations) {
          report_latency(report);
          if (stats_dump) {
            obs::Registry registry;
            runner->network().register_stats(registry);
            std::printf("  stats registry (%zu entries):\n", registry.size());
            for (const obs::Registry::Sample& s : registry.snapshot()) {
              report.stat(s.name, s.value);
              std::printf("    %-40s %.6g\n", s.name.c_str(), s.value);
            }
          }
          if (!trace_path.empty()) {
            if (obs::write_chrome_trace(trace_path)) {
              std::printf("  trace: %zu events + %zu flow records -> %s\n",
                          obs::recorder().size(), obs::flow_recorder().size(),
                          trace_path.c_str());
              if (obs::recorder().dropped() > 0) {
                std::fprintf(stderr,
                             "warning: trace ring overflowed, %llu oldest "
                             "events dropped (obs.trace_dropped) — raise the "
                             "ring capacity or trace a shorter window\n",
                             static_cast<unsigned long long>(
                                 obs::recorder().dropped()));
              }
              if (obs::flow_recorder().dropped() > 0) {
                std::fprintf(stderr,
                             "warning: flight-recorder ring overflowed, "
                             "%llu oldest flow records dropped — raise "
                             "--flow-sample N to sample fewer flows\n",
                             static_cast<unsigned long long>(
                                 obs::flow_recorder().dropped()));
              }
            } else {
              std::fprintf(stderr, "cannot write trace to %s\n",
                           trace_path.c_str());
              return 2;
            }
          }
          if (rep_index >= 2) {
            report.metric("deterministic_rerun_identical",
                          all_identical ? 1.0 : 0.0, "bool");
          } else {
            // A single invocation never compared anything; omitting the
            // metric (rather than claiming 1) makes check_bench_json's
            // required-metric gate flag the unchecked run.
            std::fprintf(stderr,
                         "note: 1 repetition — rerun determinism was NOT "
                         "checked (deterministic_rerun_identical omitted)\n");
          }
        }
        return identical ? 0 : 1;
      });
  return status;
}
