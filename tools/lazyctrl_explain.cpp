// lazyctrl_explain — run a scenario and explain where flow latency went.
//
//   lazyctrl_explain <scenario.scn> [options]
//
//   --set SECTION.KEY=VALUE  override any spec value (same grammar as
//                            lazyctrl_run, repeatable)
//   --scale F                multiply workload.flows by F
//   --flow-sample N          flight-record every N-th flow (default 64;
//                            deterministic, keyed on the flow id). The
//                            waterfall and breakdown sections need at
//                            least one sampled record.
//   --top K                  how many slowest sampled flows to print
//                            (default 10)
//   --trace FILE             also record trace events and write sampled
//                            flows as per-stage spans into FILE (Chrome
//                            trace_event JSON; validate/view with
//                            check_trace_json / Perfetto)
//   --log-level LEVEL        log verbosity (debug|info|warn|error or 0-3)
//
// Output, per docs/OBSERVABILITY.md "Latency attribution":
//   1. whole-run per-stage percentile table (every flow, histogram-fed);
//   2. "where does p99 live" — mean stage breakdown over the sampled
//      flows at or above the e2e p99, naming the dominant stage;
//   3. the same breakdown per scenario phase (windows fenced by script
//      events), which is how an outage shows up as ctrl_queue time;
//   4. a per-stage waterfall of the top-K slowest sampled flows.
//
// Exit codes: 0 ok; 2 parse/semantic/usage failure.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/time.h"
#include "core/network.h"
#include "obs/flow_latency.h"
#include "obs/trace.h"
#include "scenario/runner.h"
#include "scenario/spec.h"

using namespace lazyctrl;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <scenario.scn> [--set section.key=value]... "
               "[--scale F] [--flow-sample N] [--top K]\n"
               "          [--trace FILE] [--log-level LEVEL]\n",
               argv0);
  return 2;
}

double to_us(double ns) { return ns / 1000.0; }

/// Mean per-stage latency over a set of flight-recorder records, plus
/// the stage (other than e2e) owning the largest share.
struct Breakdown {
  double mean[obs::kNumFlowStages] = {};
  double delivery = 0;  ///< e2e minus the attributed stages
  std::size_t flows = 0;
  obs::FlowStage dominant = obs::FlowStage::kEdge;

  void add(const obs::FlowRecord& rec) {
    for (std::size_t i = 0; i < obs::kNumFlowStages; ++i) {
      mean[i] += static_cast<double>(
          rec.stages.stage(static_cast<obs::FlowStage>(i)));
    }
    ++flows;
  }
  void finish() {
    if (flows == 0) return;
    double attributed = 0;
    double best = -1;
    for (std::size_t i = 0; i < obs::kNumFlowStages; ++i) {
      mean[i] /= static_cast<double>(flows);
      if (static_cast<obs::FlowStage>(i) == obs::FlowStage::kE2e) continue;
      attributed += mean[i];
      if (mean[i] > best) {
        best = mean[i];
        dominant = static_cast<obs::FlowStage>(i);
      }
    }
    delivery =
        std::max(mean[static_cast<std::size_t>(obs::FlowStage::kE2e)] -
                     attributed,
                 0.0);
  }
  [[nodiscard]] double stage(obs::FlowStage s) const {
    return mean[static_cast<std::size_t>(s)];
  }
};

void print_breakdown(const Breakdown& b, const char* indent) {
  std::printf(
      "%sedge %9.1f us | retry %9.1f us | punt_rtt %9.1f us | "
      "ctrl_queue %9.1f us | install %9.1f us | delivery %9.1f us\n",
      indent, to_us(b.stage(obs::FlowStage::kEdge)),
      to_us(b.stage(obs::FlowStage::kRetryBackoff)),
      to_us(b.stage(obs::FlowStage::kPuntRtt)),
      to_us(b.stage(obs::FlowStage::kCtrlQueue)),
      to_us(b.stage(obs::FlowStage::kInstall)), to_us(b.delivery));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);

  std::string path;
  std::vector<std::string> overrides;
  double scale = 1.0;
  int flow_sample = 64;
  int top_k = 10;
  std::string trace_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s expects a value\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--set") {
      const char* v = next("--set");
      if (v == nullptr) return 2;
      overrides.emplace_back(v);
    } else if (arg == "--scale") {
      const char* v = next("--scale");
      if (v == nullptr) return 2;
      scale = std::atof(v);
      if (scale <= 0) {
        std::fprintf(stderr, "--scale expects a positive number\n");
        return 2;
      }
    } else if (arg == "--flow-sample") {
      const char* v = next("--flow-sample");
      if (v == nullptr) return 2;
      flow_sample = std::atoi(v);
      if (flow_sample < 0) {
        std::fprintf(stderr, "--flow-sample expects a non-negative integer\n");
        return 2;
      }
    } else if (arg == "--top") {
      const char* v = next("--top");
      if (v == nullptr) return 2;
      top_k = std::atoi(v);
      if (top_k < 1) {
        std::fprintf(stderr, "--top expects a positive integer\n");
        return 2;
      }
    } else if (arg == "--trace") {
      const char* v = next("--trace");
      if (v == nullptr) return 2;
      trace_path = v;
    } else if (arg == "--log-level") {
      const char* v = next("--log-level");
      if (v == nullptr) return 2;
      LogLevel level;
      if (!parse_log_level(v, &level)) {
        std::fprintf(stderr,
                     "--log-level expects debug|info|warn|error or 0-3, "
                     "got %s\n",
                     v);
        return 2;
      }
      set_log_level(level);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return usage(argv[0]);
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "only one scenario file may be given\n");
      return usage(argv[0]);
    }
  }
  if (path.empty()) return usage(argv[0]);

  scenario::ParseResult parsed = scenario::parse_scenario_file(path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: invalid scenario\n%s", path.c_str(),
                 parsed.error_text().c_str());
    return 2;
  }
  scenario::ScenarioSpec spec = std::move(parsed.spec);
  for (const std::string& o : overrides) {
    std::string err;
    if (!scenario::apply_override(spec, o, &err)) {
      std::fprintf(stderr, "--set %s: %s\n", o.c_str(), err.c_str());
      return 2;
    }
  }
  if (scale != 1.0) {
    spec.workload.flows = static_cast<std::size_t>(
        static_cast<double>(spec.workload.flows) * scale);
  }

  if (!trace_path.empty()) obs::recorder().enable();
  obs::flow_recorder().enable(static_cast<std::uint32_t>(flow_sample));

  std::printf("explain: %s (%zu flows, flow-sample 1-in-%d)\n",
              spec.name.c_str(), spec.workload.flows, flow_sample);
  auto runner = std::make_unique<scenario::ScenarioRunner>(spec);
  std::string error;
  if (!runner->run(&error)) {
    std::fprintf(stderr, "scenario failed: %s\n", error.c_str());
    return 2;
  }

  const obs::FlowLatencyRecorder& rec = obs::flow_recorder();

  // 1. Whole-run per-stage percentiles (every flow, not just samples).
  std::printf("\nstage latency, whole run (%llu flows):\n",
              static_cast<unsigned long long>(
                  rec.stage_histogram(obs::FlowStage::kE2e).count()));
  std::printf("  %-12s %12s %12s %12s %12s %12s\n", "stage", "p50 us",
              "p90 us", "p99 us", "p999 us", "max us");
  for (std::size_t i = 0; i < obs::kNumFlowStages; ++i) {
    const auto stage = static_cast<obs::FlowStage>(i);
    const obs::LogHistogram& h = rec.stage_histogram(stage);
    std::printf("  %-12s %12.1f %12.1f %12.1f %12.1f %12.1f\n",
                obs::flow_stage_name(stage), to_us(h.quantile(0.50)),
                to_us(h.quantile(0.90)), to_us(h.quantile(0.99)),
                to_us(h.quantile(0.999)),
                to_us(static_cast<double>(h.max())));
  }

  // Sampled records, slowest first.
  std::vector<obs::FlowRecord> samples;
  samples.reserve(rec.size());
  for (std::size_t i = 0; i < rec.size(); ++i) {
    samples.push_back(rec.record_at(i));
  }
  std::sort(samples.begin(), samples.end(),
            [](const obs::FlowRecord& a, const obs::FlowRecord& b) {
              return a.stages.e2e > b.stages.e2e;
            });
  if (rec.dropped() > 0) {
    std::fprintf(stderr,
                 "warning: flight-recorder ring overflowed, %llu oldest "
                 "flow records dropped — the sections below cover a "
                 "truncated window\n",
                 static_cast<unsigned long long>(rec.dropped()));
  }

  if (samples.empty()) {
    std::printf(
        "\nno sampled flow records (--flow-sample 0 or an empty run): "
        "skipping breakdown and waterfall sections\n");
  } else {
    // 2. Where does p99 live — mean stage breakdown over the sampled
    // flows at or above the whole-run e2e p99.
    const double p99 =
        rec.stage_histogram(obs::FlowStage::kE2e).quantile(0.99);
    Breakdown slow;
    for (const obs::FlowRecord& r : samples) {
      if (static_cast<double>(r.stages.e2e) >= p99) slow.add(r);
    }
    slow.finish();
    std::printf("\nwhere does p99 live (%zu sampled flows >= e2e p99 "
                "%.1f us):\n",
                slow.flows, to_us(p99));
    if (slow.flows == 0) {
      std::printf("  (no sampled flow reached the p99 — raise the sample "
                  "rate with --flow-sample 1)\n");
    } else {
      print_breakdown(slow, "  ");
      std::printf("  => dominant stage: %s\n",
                  obs::flow_stage_name(slow.dominant));
    }

    // 3. Per-phase breakdown (phases = windows between script events).
    if (rec.phases().size() > 1) {
      std::printf("\nper-phase breakdown (slow = sampled flows >= the "
                  "phase's own e2e p99):\n");
      for (std::size_t pi = 0; pi < rec.phases().size(); ++pi) {
        const auto& phase = rec.phases()[pi];
        const obs::LogHistogram& e2e =
            phase.stages[static_cast<std::size_t>(obs::FlowStage::kE2e)];
        if (e2e.count() == 0) continue;
        const double phase_p99 = e2e.quantile(0.99);
        Breakdown b;
        for (const obs::FlowRecord& r : samples) {
          const bool in_phase =
              r.start >= phase.from && (phase.to < 0 || r.start < phase.to);
          if (in_phase && static_cast<double>(r.stages.e2e) >= phase_p99) {
            b.add(r);
          }
        }
        b.finish();
        char to_buf[32] = "end";
        if (phase.to >= 0) {
          std::snprintf(to_buf, sizeof(to_buf), "%.1fs",
                        to_seconds(phase.to));
        }
        std::printf("  phase %zu [%s] t=%.1fs..%s: %llu flows, e2e p99 "
                    "%.1f us",
                    pi, phase.label.c_str(), to_seconds(phase.from), to_buf,
                    static_cast<unsigned long long>(e2e.count()),
                    to_us(phase_p99));
        if (b.flows == 0) {
          std::printf(" (no sampled slow flows)\n");
          continue;
        }
        std::printf(", dominant stage %s\n",
                    obs::flow_stage_name(b.dominant));
        print_breakdown(b, "    ");
      }
    }

    // 4. Top-K slowest sampled flows, per-stage waterfall.
    const std::size_t k =
        std::min<std::size_t>(static_cast<std::size_t>(top_k),
                              samples.size());
    std::printf("\ntop %zu slowest sampled flows:\n", k);
    std::printf("  %-10s %-19s %9s %10s %10s %10s %10s %10s %10s %10s\n",
                "flow", "path", "t_start s", "edge us", "retry us", "punt us",
                "queue us", "install us", "deliver us", "e2e us");
    for (std::size_t i = 0; i < k; ++i) {
      const obs::FlowRecord& r = samples[i];
      const SimDuration attributed = r.stages.edge + r.stages.retry_backoff +
                                     r.stages.punt_rtt + r.stages.ctrl_queue +
                                     r.stages.install;
      std::printf(
          "  %-10llu %-19s %9.1f %10.1f %10.1f %10.1f %10.1f %10.1f "
          "%10.1f %10.1f\n",
          static_cast<unsigned long long>(r.flow_id),
          obs::flow_path_name(r.path), to_seconds(r.start),
          to_us(static_cast<double>(r.stages.edge)),
          to_us(static_cast<double>(r.stages.retry_backoff)),
          to_us(static_cast<double>(r.stages.punt_rtt)),
          to_us(static_cast<double>(r.stages.ctrl_queue)),
          to_us(static_cast<double>(r.stages.install)),
          to_us(static_cast<double>(
              std::max<SimDuration>(r.stages.e2e - attributed, 0))),
          to_us(static_cast<double>(r.stages.e2e)));
    }
  }

  if (!trace_path.empty()) {
    if (!obs::write_chrome_trace(trace_path)) {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_path.c_str());
      return 2;
    }
    std::printf("\ntrace: %zu events + %zu flow records -> %s\n",
                obs::recorder().size(), rec.size(), trace_path.c_str());
    if (obs::recorder().dropped() > 0) {
      std::fprintf(stderr,
                   "warning: trace ring overflowed, %llu oldest events "
                   "dropped (obs.trace_dropped)\n",
                   static_cast<unsigned long long>(obs::recorder().dropped()));
    }
  }
  return 0;
}
