// Replay a trace from a CSV file under both control planes.
//
//   $ ./examples/replay_from_csv <trace.csv> [group_size_limit]
//
// With no arguments, generates a demo trace, saves it to /tmp, and replays
// that — so the example is runnable out of the box. The CSV format is the
// one produced by workload::save_trace_csv:
//
//   src_host,dst_host,start_ns,packets,avg_packet_bytes
//
// Host ids must fit the generated demo topology (or bring your own ids in
// [0, hosts) and adjust topology options below).
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/lazyctrl.h"
#include "core/report.h"
#include "workload/analyzer.h"
#include "workload/trace_io.h"

using namespace lazyctrl;

int main(int argc, char** argv) {
  Rng rng(99);
  topo::MultiTenantOptions topo_opts;
  topo_opts.switch_count = 32;
  topo_opts.tenant_count = 16;
  const topo::Topology topo = topo::build_multi_tenant(topo_opts, rng);

  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    // Self-contained demo: generate, save, then load like a user would.
    path = "/tmp/lazyctrl_demo_trace.csv";
    workload::RealLikeOptions gen;
    gen.total_flows = 40'000;
    gen.horizon = 4 * kHour;
    const workload::Trace demo = workload::generate_real_like(topo, gen, rng);
    if (!workload::save_trace_csv(demo, path)) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("no trace given; wrote a demo trace to %s\n", path.c_str());
  }

  std::string error;
  const auto trace = workload::load_trace_csv(path, 0, &error);
  if (!trace) {
    std::fprintf(stderr, "failed to load %s: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }
  for (const workload::Flow& f : trace->flows) {
    if (f.src.value() >= topo.host_count() ||
        f.dst.value() >= topo.host_count()) {
      std::fprintf(stderr,
                   "flow references host %u outside the %zu-host topology\n",
                   std::max(f.src.value(), f.dst.value()),
                   topo.host_count());
      return 1;
    }
  }

  // What does this workload look like?
  const workload::TraceProfile profile = workload::analyze(*trace, topo);
  std::printf("loaded %zu flows over %.1f h; intra-tenant share %.2f, "
              "same-switch share %.2f, peak/trough %.1f, hubs %zu\n\n",
              trace->flow_count(), to_seconds(trace->horizon) / 3600.0,
              profile.intra_tenant_flow_share,
              profile.same_switch_flow_share, profile.peak_to_trough,
              profile.hubs.size());

  const std::size_t limit =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 6;

  core::Config lazy_cfg;
  lazy_cfg.mode = core::ControlMode::kLazyCtrl;
  lazy_cfg.grouping.group_size_limit = limit;
  core::Network lazy(topo, lazy_cfg);
  lazy.bootstrap(workload::build_intensity_graph(*trace, topo));
  lazy.replay(*trace);

  core::Config of_cfg;
  of_cfg.mode = core::ControlMode::kOpenFlow;
  core::Network baseline(topo, of_cfg);
  baseline.bootstrap();
  baseline.replay(*trace);

  core::write_comparison(std::cout, baseline, lazy);
  return 0;
}
