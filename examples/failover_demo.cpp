// Failover walk-through (§III-E): one local control group's failure-
// detection wheel under a sequence of injected faults, printing the
// detection and recovery timeline.
//
//   $ ./examples/failover_demo
#include <cstdio>

#include "core/lazyctrl.h"

using namespace lazyctrl;

int main() {
  sim::Simulator simulator;

  core::Config cfg;
  cfg.failover_enabled = true;
  cfg.keepalive_period = kSecond;
  cfg.keepalive_loss_threshold = 3;
  cfg.switch_reboot_delay = 8 * kSecond;

  // A 10-switch group; the controller ordered members by management MAC and
  // picked S4 as designated with S7 and S1 as backups.
  std::vector<SwitchId> members;
  for (std::uint32_t i = 0; i < 10; ++i) members.push_back(SwitchId{i});
  core::FailureWheel wheel(simulator, members, SwitchId{4},
                           {SwitchId{7}, SwitchId{1}}, cfg);
  wheel.start();

  std::printf("wheel: 10 switches in a ring, designated S4, backups S7,S1\n");
  std::printf("keep-alives every %.0fs, loss declared after %d misses\n\n",
              to_seconds(cfg.keepalive_period),
              cfg.keepalive_loss_threshold);

  // Fault schedule.
  simulator.schedule_at(5 * kSecond, [&] {
    std::printf("[t=%5.1fs] FAULT: control link of S2 cut\n",
                to_seconds(simulator.now()));
    wheel.fail_control_link(SwitchId{2});
  });
  simulator.schedule_at(20 * kSecond, [&] {
    std::printf("[t=%5.1fs] FAULT: peer link S4 <-> S5 cut (S4 is "
                "designated)\n",
                to_seconds(simulator.now()));
    wheel.fail_peer_link(SwitchId{4}, SwitchId{5});
  });
  simulator.schedule_at(40 * kSecond, [&] {
    std::printf("[t=%5.1fs] FAULT: switch S8 crashes\n",
                to_seconds(simulator.now()));
    wheel.fail_switch(SwitchId{8});
  });
  simulator.schedule_at(60 * kSecond, [&] {
    std::printf("[t=%5.1fs] REPAIR: control link of S2 restored\n",
                to_seconds(simulator.now()));
    wheel.recover_control_link(SwitchId{2});
  });

  simulator.run_until(75 * kSecond);

  std::printf("\ndetection & recovery timeline (Table I inference):\n");
  for (const core::WheelEvent& e : wheel.events()) {
    std::printf("  [t=%5.1fs] S%-2u %-15s %s\n", to_seconds(e.at),
                e.subject.value(), core::to_string(e.kind),
                e.action.c_str());
  }

  std::printf("\nfinal state:\n");
  std::printf("  designated switch: S%u\n", wheel.designated().value());
  std::printf("  S2 control relayed: %s (restored)\n",
              wheel.control_relayed(SwitchId{2}) ? "yes" : "no");
  std::printf("  S8 online: %s (rebooted after %.0fs)\n",
              wheel.is_switch_up(SwitchId{8}) ? "yes" : "no",
              to_seconds(cfg.switch_reboot_delay));
  return 0;
}
