// Quickstart: build a small multi-tenant data center, drive the same trace
// through standard OpenFlow control and LazyCtrl, and compare what the
// central controller had to do.
//
//   $ ./examples/quickstart
//
// Walks through the whole public API surface: topology builder, trace
// generator, intensity graph, Network bootstrap/replay, metrics.
#include <cstdio>

#include "core/lazyctrl.h"

using namespace lazyctrl;

int main() {
  // 1. A small cloud: 12 edge switches, 6 tenants, ~20-40 VMs each.
  Rng rng(7);
  topo::MultiTenantOptions topo_opts;
  topo_opts.switch_count = 12;
  topo_opts.tenant_count = 6;
  topo_opts.min_vms_per_tenant = 20;
  topo_opts.max_vms_per_tenant = 40;
  const topo::Topology topo = topo::build_multi_tenant(topo_opts, rng);
  std::printf("topology: %zu switches, %zu hosts, %zu tenants\n",
              topo.switch_count(), topo.host_count(), topo_opts.tenant_count);

  // 2. A 2-hour trace with the locality structure of §II (skewed pairs,
  //    tenant-local traffic).
  workload::RealLikeOptions trace_opts;
  trace_opts.total_flows = 50'000;
  trace_opts.horizon = 2 * kHour;
  const workload::Trace trace =
      workload::generate_real_like(topo, trace_opts, rng);
  const workload::TraceStats stats = workload::compute_stats(trace, topo);
  std::printf("trace: %zu flows, %zu communicating pairs, top-10%% pair "
              "share %.2f, 5-way centrality %.2f\n\n",
              stats.flow_count, stats.distinct_pairs,
              stats.top10_pair_flow_share, stats.avg_centrality);

  // 3. The history intensity graph drives the initial switch grouping
  //    (IniGroup uses the first 30 minutes here).
  const graph::WeightedGraph history =
      workload::build_intensity_graph(trace, topo, 0, 30 * kMinute);

  // 4. Run LazyCtrl.
  core::Config lazy_cfg;
  lazy_cfg.mode = core::ControlMode::kLazyCtrl;
  lazy_cfg.grouping.group_size_limit = 4;
  core::Network lazy(topo, lazy_cfg);
  lazy.bootstrap(history);
  std::printf("LazyCtrl grouping: %zu local control groups (limit %zu)\n",
              lazy.grouping().group_count,
              lazy_cfg.grouping.group_size_limit);
  const auto group_members = lazy.grouping().members();
  for (std::size_t g = 0; g < lazy.grouping().group_count; ++g) {
    std::printf("  LCG #%zu:", g);
    for (SwitchId sw : group_members[g]) {
      std::printf(" S%u%s", sw.value(),
                  lazy.edge_switch(sw).is_designated() ? "*" : "");
    }
    std::printf("\n");
  }
  lazy.replay(trace);

  // 5. Run the OpenFlow baseline on the same trace.
  core::Config of_cfg;
  of_cfg.mode = core::ControlMode::kOpenFlow;
  core::Network baseline(topo, of_cfg);
  baseline.bootstrap();
  baseline.replay(trace);

  // 6. Compare.
  const core::RunMetrics& lm = lazy.metrics();
  const core::RunMetrics& bm = baseline.metrics();
  std::printf("\n%-34s %14s %14s\n", "metric", "OpenFlow", "LazyCtrl");
  std::printf("%-34s %14llu %14llu\n", "controller packet-ins",
              (unsigned long long)bm.controller_packet_ins,
              (unsigned long long)lm.controller_packet_ins);
  std::printf("%-34s %14s %14llu\n", "flows handled inside groups", "-",
              (unsigned long long)lm.flows_intra_group);
  std::printf("%-34s %14s %14llu\n", "flows delivered locally", "-",
              (unsigned long long)lm.flows_local_delivery);
  std::printf("%-34s %14.3f %14.3f\n", "mean first-packet latency (ms)",
              bm.first_packet_latency_ms.mean(),
              lm.first_packet_latency_ms.mean());
  std::printf("%-34s %14s %14zu\n", "G-FIB bytes total", "-",
              lazy.total_gfib_bytes());
  std::printf("\ncontroller workload reduction: %.1f%%\n",
              100.0 * (1.0 - static_cast<double>(lm.controller_packet_ins) /
                                 static_cast<double>(
                                     bm.controller_packet_ins)));
  return 0;
}
