// A paper-scale scenario: 272 edge switches and ~6.5k VMs from ~110
// tenants, a day-long skewed trace, VM migrations at midday, and dynamic
// regrouping keeping the controller lazy. Prints an hour-by-hour report.
//
//   $ ./examples/multi_tenant_datacenter
#include <cstdio>

#include "core/lazyctrl.h"

using namespace lazyctrl;

int main() {
  Rng rng(2026);

  // Paper-scale topology (§V-A).
  topo::MultiTenantOptions topo_opts;
  topo_opts.switch_count = 272;
  topo_opts.tenant_count = 110;
  topo_opts.min_vms_per_tenant = 20;
  topo_opts.max_vms_per_tenant = 100;
  const topo::Topology topo = topo::build_multi_tenant(topo_opts, rng);

  // Day-long trace with diurnal arrivals.
  workload::RealLikeOptions trace_opts;
  trace_opts.total_flows = 250'000;
  const workload::Trace trace =
      workload::generate_real_like(topo, trace_opts, rng);

  core::Config cfg;
  cfg.mode = core::ControlMode::kLazyCtrl;
  cfg.grouping.group_size_limit = 46;
  cfg.grouping.dynamic_regrouping = true;

  core::Network net(topo, cfg);
  net.bootstrap(workload::build_intensity_graph(trace, topo, 0, kHour));
  std::printf("bootstrapped %zu local control groups over %zu switches "
              "(%zu hosts)\n",
              net.grouping().group_count, topo.switch_count(),
              topo.host_count());

  // Midday maintenance: migrate 30 VMs to new racks between 12:00-12:30.
  std::size_t migrations = 0;
  for (std::uint32_t i = 0; i < 30; ++i) {
    const HostId host{static_cast<std::uint32_t>(
        rng.next_below(topo.host_count()))};
    const SwitchId to{static_cast<std::uint32_t>(
        rng.next_below(topo.switch_count()))};
    net.schedule_migration(host, to,
                           12 * kHour + static_cast<SimTime>(
                                            rng.next_below(30) * kMinute));
    ++migrations;
  }
  std::printf("scheduled %zu VM migrations around noon\n\n", migrations);

  net.replay(trace);

  const core::RunMetrics& m = net.metrics();
  std::printf("%-6s %16s %18s %14s\n", "hour", "ctrl requests/s",
              "mean latency (ms)", "grp updates");
  for (std::size_t h = 0; h < m.controller_requests.bucket_count(); ++h) {
    std::printf("%-6s %16.2f %18.3f %14llu\n",
                m.controller_requests.bucket_label_hours(h).c_str(),
                m.controller_requests.bucket_rate_per_sec(h),
                m.packet_latency.bucket_mean(h),
                (unsigned long long)m.grouping_updates.bucket_events(h));
  }

  std::printf("\nday summary\n");
  std::printf("  flows seen:              %llu\n",
              (unsigned long long)m.flows_seen);
  std::printf("  handled inside LCGs:     %llu (%.1f%%)\n",
              (unsigned long long)(m.flows_intra_group +
                                   m.flows_local_delivery),
              100.0 * static_cast<double>(m.flows_intra_group +
                                          m.flows_local_delivery) /
                  static_cast<double>(m.flows_seen));
  std::printf("  flow-table hits:         %llu\n",
              (unsigned long long)m.flows_flow_table_hit);
  std::printf("  controller packet-ins:   %llu\n",
              (unsigned long long)m.controller_packet_ins);
  std::printf("  grouping updates:        %llu\n",
              (unsigned long long)m.grouping_update_count);
  std::printf("  peer-link messages:      %llu\n",
              (unsigned long long)m.peer_link_messages);
  std::printf("  state-link messages:     %llu\n",
              (unsigned long long)m.state_link_messages);
  std::printf("  BF false-positive copies:%llu (%.4f%% of packets)\n",
              (unsigned long long)m.bf_false_positive_copies,
              100.0 * static_cast<double>(m.bf_false_positive_copies) /
                  static_cast<double>(m.packets_accounted));
  std::printf("  G-FIB storage, fabric:   %zu bytes\n",
              net.total_gfib_bytes());
  return 0;
}
