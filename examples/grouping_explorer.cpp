// Grouping explorer: a standalone playground for the SGI algorithm.
// Builds an intensity graph from a chosen synthetic trace, sweeps group
// size limits, shows the Winter/limit trade-off, and demonstrates an
// incremental update after a simulated traffic shift.
//
//   $ ./examples/grouping_explorer [p q]     (default: Syn-A, p=90 q=10)
#include <cstdio>
#include <cstdlib>

#include "core/lazyctrl.h"

using namespace lazyctrl;

int main(int argc, char** argv) {
  const double p = argc > 1 ? std::atof(argv[1]) : 90.0;
  const double q = argc > 2 ? std::atof(argv[2]) : 10.0;

  Rng rng(11);
  topo::MultiTenantOptions topo_opts;
  topo_opts.switch_count = 272;
  topo_opts.tenant_count = 110;
  const topo::Topology topo = topo::build_multi_tenant(topo_opts, rng);

  workload::SyntheticOptions trace_opts;
  trace_opts.p = p;
  trace_opts.q = q;
  trace_opts.total_flows = 300'000;
  const workload::Trace trace =
      workload::generate_synthetic(topo, trace_opts, rng);
  const graph::WeightedGraph intensity =
      workload::build_intensity_graph(trace, topo);

  std::printf("synthetic trace p=%.0f q=%.0f: %zu flows over %zu switches\n",
              p, q, trace.flow_count(), topo.switch_count());
  std::printf("intensity graph: %zu edges, total intensity %.1f flows/s\n\n",
              intensity.edge_count(), intensity.total_edge_weight());

  // Sweep the group size limit.
  std::printf("%-8s %8s %10s %14s\n", "limit", "groups", "Winter",
              "G-FIB B/switch");
  for (std::size_t limit : {8u, 16u, 24u, 46u, 68u, 92u, 136u}) {
    core::Sgi sgi(core::SgiOptions{.group_size_limit = limit});
    Rng grng(limit);
    const core::Grouping grouping = sgi.initial_grouping(intensity, grng);
    std::printf("%-8zu %8zu %9.2f%% %14zu\n", limit, grouping.group_count,
                100.0 * core::inter_group_intensity(intensity, grouping),
                (limit - 1) * 2048);
  }

  // Demonstrate IncUpdate: shift traffic between two random tenants and
  // let the incremental update absorb it.
  std::printf("\nincremental update after a traffic shift:\n");
  core::Sgi sgi(core::SgiOptions{.group_size_limit = 46,
                                 .max_iterations = 8});
  Rng grng(46);
  core::Grouping grouping = sgi.initial_grouping(intensity, grng);

  graph::WeightedGraph shifted = intensity;
  // Two switches from different groups develop strong mutual affinity.
  const auto members = grouping.members();
  const SwitchId a = members.at(0).front();
  const SwitchId b = members.at(members.size() / 2).front();
  shifted.add_edge(a.value(), b.value(),
                   intensity.total_edge_weight() * 0.05);
  std::printf("  injected heavy flow S%u <-> S%u (5%% of fabric "
              "intensity) across groups\n",
              a.value(), b.value());

  const double before = core::inter_group_intensity(shifted, grouping);
  const core::Sgi::UpdateResult result =
      sgi.incremental_update(grouping, shifted, grng);
  std::printf("  Winter %.2f%% -> %.2f%% after %d merge/split iteration(s); "
              "%zu group(s) touched\n",
              100.0 * before, 100.0 * result.inter_group_after,
              result.iterations, result.touched_groups.size());
  std::printf("  S%u and S%u now in the same group: %s\n", a.value(),
              b.value(),
              grouping.group_of(a) == grouping.group_of(b) ? "yes" : "no");
  return 0;
}
